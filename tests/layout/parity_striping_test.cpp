#include <gtest/gtest.h>

#include <map>
#include <set>

#include "layout/layout.hpp"

namespace raidsim {
namespace {

constexpr std::int64_t kBlocks = 1000;
constexpr std::int64_t kPhysical = 1200;

TEST(ParityStriping, AreaGeometry) {
  ParityStripingLayout layout(4, kBlocks, kPhysical,
                              ParityPlacement::kMiddleCylinders);
  EXPECT_EQ(layout.total_disks(), 5);
  // 5 areas of ceil(1000/5) = 200 blocks.
  EXPECT_EQ(layout.area_blocks(), 200);
  EXPECT_EQ(layout.parity_slot(), 2);  // middle of 5 slots
}

TEST(ParityStriping, EndPlacementUsesLastSlot) {
  ParityStripingLayout layout(4, kBlocks, kPhysical,
                              ParityPlacement::kEndCylinders);
  EXPECT_EQ(layout.parity_slot(), 4);
}

TEST(ParityStriping, PhysicalSlotSkipsParityArea) {
  ParityStripingLayout layout(4, kBlocks, kPhysical,
                              ParityPlacement::kMiddleCylinders);
  // Parity slot 2: data areas 0,1 keep their slots; 2,3 shift past it.
  EXPECT_EQ(layout.physical_slot(0), 0);
  EXPECT_EQ(layout.physical_slot(1), 1);
  EXPECT_EQ(layout.physical_slot(2), 3);
  EXPECT_EQ(layout.physical_slot(3), 4);
}

TEST(ParityStriping, GroupsHaveOneMemberPerDisk) {
  const int n = 4;
  ParityStripingLayout layout(n, kBlocks, kPhysical,
                              ParityPlacement::kMiddleCylinders);
  // For each group g, exactly one data area on every disk != g.
  for (int g = 0; g <= n; ++g) {
    int members = 0;
    for (int disk = 0; disk <= n; ++disk) {
      int on_this_disk = 0;
      for (int k = 0; k < n; ++k)
        if (layout.group_of(disk, k) == g) ++on_this_disk;
      if (disk == g) {
        EXPECT_EQ(on_this_disk, 0) << "group's own parity disk holds data";
      } else {
        EXPECT_EQ(on_this_disk, 1);
      }
      members += on_this_disk;
    }
    EXPECT_EQ(members, n);
  }
}

TEST(ParityStriping, SequentialDataStaysOnOneDisk) {
  ParityStripingLayout layout(4, kBlocks, kPhysical,
                              ParityPlacement::kMiddleCylinders);
  // Consecutive logical blocks within one disk's data span stay on that
  // disk -- the defining property versus RAID5 (Section 2.2).
  auto a = layout.map_read(0, 1);
  auto b = layout.map_read(1, 1);
  EXPECT_EQ(a[0].disk, b[0].disk);
  EXPECT_EQ(b[0].start_block, a[0].start_block + 1);
}

TEST(ParityStriping, WritePlanTargetsGroupParity) {
  const int n = 4;
  ParityStripingLayout layout(n, kBlocks, kPhysical,
                              ParityPlacement::kMiddleCylinders);
  // Block in disk 1, area 2, offset 5: logical = 1*(4*200) + 2*200 + 5.
  const std::int64_t logical = 1 * (4 * 200) + 2 * 200 + 5;
  auto plans = layout.map_write(logical, 1);
  ASSERT_EQ(plans.size(), 1u);
  const auto& plan = plans[0];
  EXPECT_FALSE(plan.reconstruct);
  ASSERT_EQ(plan.writes.size(), 1u);
  EXPECT_EQ(plan.writes[0].disk, 1);
  const int group = layout.group_of(1, 2);
  EXPECT_EQ(plan.parity.disk, group);
  EXPECT_NE(plan.parity.disk, 1);
  // Parity lives at the parity slot at the same offset.
  EXPECT_EQ(plan.parity.start_block,
            static_cast<std::int64_t>(layout.parity_slot()) * 200 + 5);
}

TEST(ParityStriping, SplitsAtAreaBoundary) {
  ParityStripingLayout layout(4, kBlocks, kPhysical,
                              ParityPlacement::kMiddleCylinders);
  // Crossing from area 0 into area 1 on the same disk: two plans with
  // different parity groups.
  auto plans = layout.map_write(199, 2);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_NE(plans[0].parity.disk, plans[1].parity.disk);
  EXPECT_EQ(plans[0].writes[0].disk, plans[1].writes[0].disk);
}

TEST(ParityStriping, CapacityValidation) {
  // 5 areas of ceil(1200/5) = 240 > 1200/5 exactly 240*5 = 1200 fits.
  EXPECT_NO_THROW(ParityStripingLayout(4, 1200, 1200,
                                       ParityPlacement::kMiddleCylinders));
  EXPECT_THROW(
      ParityStripingLayout(4, 1201, 1200, ParityPlacement::kMiddleCylinders),
      std::invalid_argument);
}

TEST(ParityStriping, MiddleVsEndMoveOnlyParity) {
  ParityStripingLayout mid(4, kBlocks, kPhysical,
                           ParityPlacement::kMiddleCylinders);
  ParityStripingLayout end(4, kBlocks, kPhysical,
                           ParityPlacement::kEndCylinders);
  // Same logical block, same disk; physical position differs when the
  // data area sits past the middle parity slot.
  auto m = mid.map_read(2 * 200 + 5, 1);   // disk 0, area 2
  auto e = end.map_read(2 * 200 + 5, 1);
  EXPECT_EQ(m[0].disk, e[0].disk);
  EXPECT_EQ(m[0].start_block, 3 * 200 + 5);  // shifted past middle parity
  EXPECT_EQ(e[0].start_block, 2 * 200 + 5);  // parity at end, no shift
}

}  // namespace
}  // namespace raidsim
