// Tests for the fine-grained Parity Striping variant (the paper's
// Section 5 future-work idea): data placement identical to classic
// Parity Striping, parity-update load rotated over all N+1 disks at
// chunk granularity.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "layout/layout.hpp"

namespace raidsim {
namespace {

constexpr std::int64_t kBlocks = 1000;
constexpr std::int64_t kPhysical = 1200;
constexpr int kChunk = 16;

ParityStripingLayout make_fine(int n = 4) {
  return ParityStripingLayout(n, kBlocks, kPhysical,
                              ParityPlacement::kMiddleCylinders, kChunk);
}

TEST(FineParityStriping, DataPlacementUnchanged) {
  ParityStripingLayout classic(4, kBlocks, kPhysical,
                               ParityPlacement::kMiddleCylinders);
  ParityStripingLayout fine = make_fine();
  for (std::int64_t block = 0; block < classic.logical_capacity();
       block += 37) {
    const auto a = classic.map_read(block, 1)[0];
    const auto b = fine.map_read(block, 1)[0];
    EXPECT_EQ(a.disk, b.disk);
    EXPECT_EQ(a.start_block, b.start_block);
  }
}

TEST(FineParityStriping, ParityNeverOnTheDataDisk) {
  ParityStripingLayout fine = make_fine();
  for (std::int64_t block = 0; block < fine.logical_capacity(); block += 7) {
    const auto plans = fine.map_write(block, 1);
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_NE(plans[0].parity.disk, plans[0].writes[0].disk);
    EXPECT_GE(plans[0].parity.disk, 0);
    EXPECT_LE(plans[0].parity.disk, 4);
  }
}

TEST(FineParityStriping, ParityRotatesWithOffsetChunk) {
  ParityStripingLayout fine = make_fine();
  // Same disk and area across several chunks: the parity disk rotates
  // (at least 3 distinct hosts over 5 chunks for this pair).
  std::set<int> hosts;
  for (int c = 0; c < 5; ++c)
    hosts.insert(fine.map_write(c * kChunk, 1)[0].parity.disk);
  EXPECT_GE(hosts.size(), 3u);
  // Within a chunk it stays put.
  EXPECT_EQ(fine.map_write(0, 1)[0].parity.disk,
            fine.map_write(kChunk - 1, 1)[0].parity.disk);
}

TEST(FineParityStriping, ParityLoadBalancedAcrossDisks) {
  ParityStripingLayout fine = make_fine();
  std::map<int, int> parity_count;
  for (std::int64_t block = 0; block < fine.logical_capacity(); ++block) {
    parity_count[fine.map_write(block, 1)[0].parity.disk]++;
  }
  // All five disks receive parity updates, within ~25% of each other.
  ASSERT_EQ(parity_count.size(), 5u);
  int min = INT_MAX, max = 0;
  for (const auto& [disk, count] : parity_count) {
    min = std::min(min, count);
    max = std::max(max, count);
  }
  EXPECT_LT(max, min * 5 / 4 + 2);
}

TEST(FineParityStriping, ClassicModeConcentratesParityPerGroup) {
  ParityStripingLayout classic(4, kBlocks, kPhysical,
                               ParityPlacement::kMiddleCylinders);
  // In classic mode, all writes to disk 0's area 0 update parity on one
  // fixed disk.
  std::set<int> parity_disks;
  for (std::int64_t o = 0; o < classic.area_blocks(); o += 11)
    parity_disks.insert(classic.map_write(o, 1)[0].parity.disk);
  EXPECT_EQ(parity_disks.size(), 1u);
  // In fine-grained mode the same area's parity spreads over many disks.
  ParityStripingLayout fine = make_fine();
  std::set<int> fine_disks;
  for (std::int64_t o = 0; o < fine.area_blocks(); o += 11)
    fine_disks.insert(fine.map_write(o, 1)[0].parity.disk);
  EXPECT_GE(fine_disks.size(), 4u);
}

TEST(FineParityStriping, ParityLocationsUniquePerGroup) {
  // No two groups may share a parity block: for every (disk, offset) in
  // the parity area, at most one group's parity lands there, i.e. the
  // map (group, offset) -> (disk, parity pbn) is injective per offset.
  ParityStripingLayout fine = make_fine();
  for (std::int64_t offset = 0; offset < 3 * kChunk; ++offset) {
    std::set<int> parity_disks;
    for (int group = 0; group <= 4; ++group) {
      const int disk = fine.parity_disk_of_group_at(group, offset);
      EXPECT_TRUE(parity_disks.insert(disk).second)
          << "offset " << offset << " group " << group;
    }
  }
}

TEST(FineParityStriping, GroupMembershipConsistentWithParityDisk) {
  ParityStripingLayout fine = make_fine();
  // A data area must never belong to the group whose parity its own disk
  // hosts at that offset.
  for (int disk = 0; disk <= 4; ++disk) {
    for (int k = 0; k < 4; ++k) {
      for (std::int64_t offset : {0l, 16l, 32l, 160l}) {
        const int group = fine.group_of_at(disk, k, offset);
        EXPECT_NE(fine.parity_disk_of_group_at(group, offset), disk);
      }
    }
  }
}

TEST(FineParityStriping, WritesSplitAtChunkBoundaries) {
  ParityStripingLayout fine = make_fine();
  // Crossing from chunk 1 into chunk 2 on disk 0/area 0: parity hosts
  // differ ((g+c) mod 5 gives 1 then 2 for this pair).
  const auto plans = fine.map_write(2 * kChunk - 2, 4);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].writes[0].block_count, 2);
  EXPECT_EQ(plans[1].writes[0].block_count, 2);
  EXPECT_NE(plans[0].parity.disk, plans[1].parity.disk);
}

TEST(FineParityStriping, RejectsNegativeChunk) {
  EXPECT_THROW(ParityStripingLayout(4, kBlocks, kPhysical,
                                    ParityPlacement::kMiddleCylinders, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
