// Property tests over every organization: the address map must be a
// bijection from logical blocks onto per-disk physical blocks, parity
// must never collide with data, and write plans must cover exactly the
// written range.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "layout/layout.hpp"
#include "util/rng.hpp"

namespace raidsim {
namespace {

struct Param {
  Organization org;
  int data_disks;
  int striping_unit;
  ParityPlacement placement;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = to_string(info.param.org) + "_N" +
                     std::to_string(info.param.data_disks) + "_U" +
                     std::to_string(info.param.striping_unit);
  if (info.param.org == Organization::kParityStriping)
    name += std::string("_") + to_string(info.param.placement);
  return name;
}

class LayoutProperty : public ::testing::TestWithParam<Param> {
 protected:
  static constexpr std::int64_t kBlocks = 600;
  static constexpr std::int64_t kPhysical = 800;

  std::unique_ptr<Layout> make() const {
    LayoutConfig config;
    config.organization = GetParam().org;
    config.data_disks = GetParam().data_disks;
    config.data_blocks_per_disk = kBlocks;
    config.physical_blocks_per_disk = kPhysical;
    config.striping_unit_blocks = GetParam().striping_unit;
    config.parity_placement = GetParam().placement;
    return make_layout(config);
  }
};

TEST_P(LayoutProperty, MapIsInjectiveAndInBounds) {
  auto layout = make();
  std::set<std::pair<int, std::int64_t>> seen;
  for (std::int64_t block = 0; block < layout->logical_capacity(); ++block) {
    auto exts = layout->map_read(block, 1);
    ASSERT_EQ(exts.size(), 1u);
    const auto& e = exts[0];
    ASSERT_GE(e.disk, 0);
    ASSERT_LT(e.disk, layout->total_disks());
    ASSERT_GE(e.start_block, 0);
    ASSERT_LT(e.start_block, kPhysical);
    ASSERT_EQ(e.block_count, 1);
    ASSERT_EQ(e.logical_start, block);
    ASSERT_TRUE(seen.emplace(e.disk, e.start_block).second)
        << "logical " << block << " collides";
  }
}

TEST_P(LayoutProperty, MultiblockReadsCoverRangeInOrder) {
  auto layout = make();
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int count = static_cast<int>(rng.uniform_i64(1, 64));
    const std::int64_t start =
        rng.uniform_i64(0, layout->logical_capacity() - count);
    auto exts = layout->map_read(start, count);
    int total = 0;
    std::int64_t next_logical = start;
    for (const auto& e : exts) {
      ASSERT_EQ(e.logical_start, next_logical);
      // Must agree with the single-block map, block by block.
      for (int i = 0; i < e.block_count; ++i) {
        auto single = layout->map_read(e.logical_start + i, 1);
        ASSERT_EQ(single[0].disk, e.disk);
        ASSERT_EQ(single[0].start_block, e.start_block + i);
      }
      next_logical += e.block_count;
      total += e.block_count;
    }
    ASSERT_EQ(total, count);
  }
}

TEST_P(LayoutProperty, ParityNeverCollidesWithData) {
  auto layout = make();
  // Gather every data (disk, pbn) location.
  std::set<std::pair<int, std::int64_t>> data_blocks;
  for (std::int64_t block = 0; block < layout->logical_capacity(); ++block) {
    const auto e = layout->map_read(block, 1)[0];
    data_blocks.emplace(e.disk, e.start_block);
  }
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const int count = static_cast<int>(rng.uniform_i64(1, 16));
    const std::int64_t start =
        rng.uniform_i64(0, layout->logical_capacity() - count);
    for (const auto& plan : layout->map_write(start, count)) {
      if (!plan.parity.valid()) continue;
      for (int i = 0; i < plan.parity.block_count; ++i) {
        ASSERT_EQ(data_blocks.count(
                      {plan.parity.disk, plan.parity.start_block + i}),
                  0u)
            << "parity overlaps data at disk " << plan.parity.disk;
      }
    }
  }
}

TEST_P(LayoutProperty, WritePlansCoverExactlyTheWrittenRange) {
  auto layout = make();
  Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    const int count = static_cast<int>(rng.uniform_i64(1, 32));
    const std::int64_t start =
        rng.uniform_i64(0, layout->logical_capacity() - count);
    std::multiset<std::pair<int, std::int64_t>> written;
    const bool mirrored = GetParam().org == Organization::kMirror;
    for (const auto& plan : layout->map_write(start, count)) {
      for (const auto& w : plan.writes)
        for (int i = 0; i < w.block_count; ++i)
          written.emplace(w.disk, w.start_block + i);
    }
    ASSERT_EQ(written.size(),
              static_cast<std::size_t>(count) * (mirrored ? 2 : 1));
    // Each written location matches the read map of the logical range.
    for (std::int64_t block = start; block < start + count; ++block) {
      const auto e = layout->map_read(block, 1)[0];
      ASSERT_EQ(written.count({e.disk, e.start_block}), 1u);
    }
  }
}

TEST_P(LayoutProperty, WritePlanParityDiskDistinctFromItsWrites) {
  auto layout = make();
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const int count = static_cast<int>(rng.uniform_i64(1, 8));
    const std::int64_t start =
        rng.uniform_i64(0, layout->logical_capacity() - count);
    for (const auto& plan : layout->map_write(start, count)) {
      if (!plan.parity.valid()) continue;
      for (const auto& w : plan.writes) ASSERT_NE(w.disk, plan.parity.disk);
      for (const auto& r : plan.reconstruct_reads)
        ASSERT_NE(r.disk, plan.parity.disk);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrganizations, LayoutProperty,
    ::testing::Values(
        Param{Organization::kBase, 4, 1, ParityPlacement::kMiddleCylinders},
        Param{Organization::kMirror, 3, 1, ParityPlacement::kMiddleCylinders},
        Param{Organization::kRaid5, 4, 1, ParityPlacement::kMiddleCylinders},
        Param{Organization::kRaid5, 5, 4, ParityPlacement::kMiddleCylinders},
        Param{Organization::kRaid5, 10, 8, ParityPlacement::kMiddleCylinders},
        Param{Organization::kRaid4, 4, 1, ParityPlacement::kMiddleCylinders},
        Param{Organization::kRaid4, 5, 4, ParityPlacement::kMiddleCylinders},
        Param{Organization::kParityStriping, 4, 1,
              ParityPlacement::kMiddleCylinders},
        Param{Organization::kParityStriping, 5, 1,
              ParityPlacement::kEndCylinders},
        Param{Organization::kParityStriping, 10, 1,
              ParityPlacement::kMiddleCylinders}),
    param_name);

}  // namespace
}  // namespace raidsim
