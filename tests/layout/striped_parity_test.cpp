#include <gtest/gtest.h>

#include <map>
#include <set>

#include "layout/layout.hpp"

namespace raidsim {
namespace {

constexpr std::int64_t kBlocks = 1000;
constexpr std::int64_t kPhysical = 1200;

TEST(Raid5, ParityRotatesOverAllDisks) {
  StripedParityLayout layout(Organization::kRaid5, 4, kBlocks, kPhysical, 1);
  std::map<int, int> parity_count;
  for (std::int64_t row = 0; row < 100; ++row)
    ++parity_count[layout.parity_disk(row)];
  EXPECT_EQ(parity_count.size(), 5u);  // all N+1 disks hold parity
  for (const auto& [disk, count] : parity_count) EXPECT_EQ(count, 20);
}

TEST(Raid4, ParityFixedOnLastDisk) {
  StripedParityLayout layout(Organization::kRaid4, 4, kBlocks, kPhysical, 1);
  for (std::int64_t row = 0; row < 50; ++row)
    EXPECT_EQ(layout.parity_disk(row), 4);
}

TEST(Raid5, DataDiskSkipsParityDisk) {
  StripedParityLayout layout(Organization::kRaid5, 4, kBlocks, kPhysical, 1);
  for (std::int64_t row = 0; row < 30; ++row) {
    const int p = layout.parity_disk(row);
    std::set<int> disks;
    for (int col = 0; col < 4; ++col) {
      const int d = layout.data_disk(row, col);
      EXPECT_NE(d, p);
      disks.insert(d);
    }
    EXPECT_EQ(disks.size(), 4u);  // all distinct
  }
}

TEST(Raid5, SingleBlockReadMapping) {
  // N=4, unit=2: logical block L -> chunk L/2, row chunk/4.
  StripedParityLayout layout(Organization::kRaid5, 4, kBlocks, kPhysical, 2);
  auto exts = layout.map_read(0, 1);
  ASSERT_EQ(exts.size(), 1u);
  EXPECT_EQ(exts[0].disk, layout.data_disk(0, 0));
  EXPECT_EQ(exts[0].start_block, 0);

  // Block 9 -> chunk 4, offset 1 -> row 1, column 0.
  exts = layout.map_read(9, 1);
  ASSERT_EQ(exts.size(), 1u);
  EXPECT_EQ(exts[0].disk, layout.data_disk(1, 0));
  EXPECT_EQ(exts[0].start_block, 1 * 2 + 1);
}

TEST(Raid5, SingleBlockWriteIsReadModifyWrite) {
  StripedParityLayout layout(Organization::kRaid5, 4, kBlocks, kPhysical, 1);
  auto plans = layout.map_write(5, 1);
  ASSERT_EQ(plans.size(), 1u);
  const auto& plan = plans[0];
  EXPECT_FALSE(plan.reconstruct);
  EXPECT_FALSE(plan.full_stripe);
  ASSERT_EQ(plan.writes.size(), 1u);
  ASSERT_TRUE(plan.parity.valid());
  EXPECT_EQ(plan.parity.disk, layout.parity_disk(1));  // block 5 -> row 1
  EXPECT_EQ(plan.parity.start_block, plan.writes[0].start_block);
  EXPECT_NE(plan.parity.disk, plan.writes[0].disk);
}

TEST(Raid5, FullStripeWriteHasNoReads) {
  StripedParityLayout layout(Organization::kRaid5, 4, kBlocks, kPhysical, 2);
  // Row 0 holds logical blocks [0, 8).
  auto plans = layout.map_write(0, 8);
  ASSERT_EQ(plans.size(), 1u);
  const auto& plan = plans[0];
  EXPECT_TRUE(plan.full_stripe);
  EXPECT_TRUE(plan.reconstruct);
  EXPECT_TRUE(plan.reconstruct_reads.empty());
  EXPECT_EQ(plan.writes.size(), 4u);
  ASSERT_TRUE(plan.parity.valid());
  EXPECT_EQ(plan.parity.block_count, 2);
}

TEST(Raid5, HalfStripeTriggersReconstruct) {
  StripedParityLayout layout(Organization::kRaid5, 4, kBlocks, kPhysical, 1);
  // Writing 2 of 4 blocks in a row: exactly half -> reconstruct.
  auto plans = layout.map_write(0, 2);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_TRUE(plans[0].reconstruct);
  EXPECT_FALSE(plans[0].full_stripe);
  EXPECT_EQ(plans[0].reconstruct_reads.size(), 2u);  // the untouched columns
  for (const auto& r : plans[0].reconstruct_reads) {
    EXPECT_NE(r.disk, plans[0].parity.disk);
    for (const auto& w : plans[0].writes) EXPECT_NE(r.disk, w.disk);
  }
}

TEST(Raid5, MultiRowWriteSplitsPlans) {
  StripedParityLayout layout(Organization::kRaid5, 4, kBlocks, kPhysical, 1);
  // 6 blocks from block 2: row 0 cols 2-3, row 1 cols 0-3 (full).
  auto plans = layout.map_write(2, 6);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_TRUE(plans[0].reconstruct);   // half of row 0
  EXPECT_TRUE(plans[1].full_stripe);   // all of row 1
}

TEST(Raid5, ParityExtentCoversTouchedOffsets) {
  StripedParityLayout layout(Organization::kRaid5, 4, kBlocks, kPhysical, 8);
  // Blocks 3..6 of chunk 0: parity must cover offsets [3, 7).
  auto plans = layout.map_write(3, 4);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].parity.start_block, 3);
  EXPECT_EQ(plans[0].parity.block_count, 4);
}

TEST(Raid5, SequentialChunksRotateDisks) {
  StripedParityLayout layout(Organization::kRaid5, 4, kBlocks, kPhysical, 1);
  // Within a row, consecutive logical blocks go to different disks.
  auto a = layout.map_read(0, 1);
  auto b = layout.map_read(1, 1);
  EXPECT_NE(a[0].disk, b[0].disk);
}

TEST(Raid5, StripingUnitValidation) {
  EXPECT_THROW(
      StripedParityLayout(Organization::kRaid5, 4, kBlocks, kPhysical, 0),
      std::invalid_argument);
  EXPECT_THROW(
      StripedParityLayout(Organization::kBase, 4, kBlocks, kPhysical, 1),
      std::invalid_argument);
  // Rows must fit the physical disk: unit 7 -> ceil(1000/7)*7 = 1001 <= 1200 OK,
  // but a database as large as the disk with a non-dividing unit fails.
  EXPECT_THROW(
      StripedParityLayout(Organization::kRaid5, 4, kPhysical - 1, kPhysical, 64),
      std::invalid_argument);
}

TEST(Raid4, WritePlansTargetDedicatedParityDisk) {
  StripedParityLayout layout(Organization::kRaid4, 4, kBlocks, kPhysical, 1);
  for (std::int64_t block : {0ll, 7ll, 123ll, 999ll}) {
    auto plans = layout.map_write(block, 1);
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_EQ(plans[0].parity.disk, 4);
  }
}

}  // namespace
}  // namespace raidsim
