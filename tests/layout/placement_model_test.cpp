#include "layout/placement_model.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

TEST(PlacementModel, PaperRuleForTrace1) {
  // Section 4.2.3: for w = 0.1, place parity in the middle for N > 10,
  // at the end for N < 10.
  EXPECT_EQ(recommended_parity_placement(0.1, 5),
            ParityPlacement::kEndCylinders);
  EXPECT_EQ(recommended_parity_placement(0.1, 15),
            ParityPlacement::kMiddleCylinders);
  EXPECT_EQ(recommended_parity_placement(0.1, 20),
            ParityPlacement::kMiddleCylinders);
  // At exactly N = 1/w the shares tie; the model keeps the end.
  EXPECT_EQ(recommended_parity_placement(0.1, 10),
            ParityPlacement::kEndCylinders);
  EXPECT_EQ(placement_crossover_array_size(0.1), 11);
}

TEST(PlacementModel, AccessShares) {
  // N = 10, w = 0.1: data area 1/100, parity area 0.1/10 = 1/100 (tie).
  EXPECT_DOUBLE_EQ(data_area_access_share(10), 0.01);
  EXPECT_DOUBLE_EQ(parity_area_access_share(0.1, 10), 0.01);
  EXPECT_FALSE(parity_hotter_than_data(0.1, 10));
  EXPECT_TRUE(parity_hotter_than_data(0.28, 10));  // trace 2's mix
}

TEST(PlacementModel, WriteHeavyWorkloadsAlwaysMiddle) {
  for (int n = 2; n <= 30; ++n)
    EXPECT_TRUE(parity_hotter_than_data(0.6, n)) << "N=" << n;
}

TEST(PlacementModel, ReadOnlyNeverMiddle) {
  for (int n = 2; n <= 30; ++n)
    EXPECT_EQ(recommended_parity_placement(0.0, n),
              ParityPlacement::kEndCylinders);
  EXPECT_GT(placement_crossover_array_size(0.0), 1000000);
}

TEST(PlacementModel, Validation) {
  EXPECT_THROW(parity_area_access_share(-0.1, 10), std::invalid_argument);
  EXPECT_THROW(parity_area_access_share(1.1, 10), std::invalid_argument);
  EXPECT_THROW(data_area_access_share(0), std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
