// Tests for the striped-mirroring (RAID 1+0) extension layout.
#include <gtest/gtest.h>

#include <set>

#include "layout/layout.hpp"

namespace raidsim {
namespace {

constexpr std::int64_t kBlocks = 1000;
constexpr std::int64_t kPhysical = 1200;

TEST(Raid10, StripesAcrossPairs) {
  Raid10Layout layout(4, kBlocks, kPhysical, /*unit=*/1);
  EXPECT_EQ(layout.total_disks(), 8);
  // Consecutive blocks rotate over the primaries (even disk indices).
  std::set<int> disks;
  for (std::int64_t block = 0; block < 4; ++block) {
    const auto ext = layout.map_read(block, 1)[0];
    EXPECT_EQ(ext.disk % 2, 0);
    disks.insert(ext.disk);
  }
  EXPECT_EQ(disks.size(), 4u);
}

TEST(Raid10, StripingUnitRespected) {
  Raid10Layout layout(4, kBlocks, kPhysical, /*unit=*/8);
  const auto a = layout.map_read(0, 1)[0];
  const auto b = layout.map_read(7, 1)[0];
  const auto c = layout.map_read(8, 1)[0];
  EXPECT_EQ(a.disk, b.disk);  // same chunk
  EXPECT_NE(a.disk, c.disk);  // next chunk, next pair
}

TEST(Raid10, RowAdvancesAfterFullStripe) {
  Raid10Layout layout(4, kBlocks, kPhysical, /*unit=*/2);
  // Blocks 0..7 fill row 0 (4 pairs x 2 blocks); block 8 starts row 1 on
  // pair 0.
  const auto first = layout.map_read(0, 1)[0];
  const auto next_row = layout.map_read(8, 1)[0];
  EXPECT_EQ(first.disk, next_row.disk);
  EXPECT_EQ(next_row.start_block, first.start_block + 2);
}

TEST(Raid10, WritesHitBothCopiesPlainly) {
  Raid10Layout layout(4, kBlocks, kPhysical, 1);
  const auto plans = layout.map_write(5, 1);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_FALSE(plans[0].parity.valid());
  EXPECT_TRUE(plans[0].full_stripe);
  ASSERT_EQ(plans[0].writes.size(), 2u);
  EXPECT_EQ(plans[0].writes[1].disk, plans[0].writes[0].disk ^ 1);
  EXPECT_EQ(plans[0].writes[0].start_block, plans[0].writes[1].start_block);
}

TEST(Raid10, DegradedReadUsesTwin) {
  Raid10Layout layout(4, kBlocks, kPhysical, 1);
  const auto ext = layout.map_read(0, 1)[0];
  const auto groups = layout.degraded_group(ext);
  ASSERT_EQ(groups.size(), 1u);
  ASSERT_EQ(groups[0].member_reads.size(), 1u);
  EXPECT_EQ(groups[0].member_reads[0].disk, ext.disk ^ 1);
  EXPECT_FALSE(groups[0].parity.valid());
}

TEST(Raid10, MapIsInjective) {
  Raid10Layout layout(3, 300, kPhysical, 4);
  std::set<std::pair<int, std::int64_t>> seen;
  for (std::int64_t block = 0; block < layout.logical_capacity(); ++block) {
    const auto ext = layout.map_read(block, 1)[0];
    ASSERT_TRUE(seen.emplace(ext.disk, ext.start_block).second);
    ASSERT_LT(ext.start_block, kPhysical);
  }
}

TEST(Raid10, BalancesSkewedAddresses) {
  // A hot region confined to one "original disk" range spreads over all
  // pairs under striping -- the motivation for the extension.
  Raid10Layout striped(4, kBlocks, kPhysical, 1);
  MirrorLayout plain(4, kBlocks, kPhysical);
  std::set<int> striped_disks, plain_disks;
  for (std::int64_t block = 0; block < 100; ++block) {  // one hot range
    striped_disks.insert(striped.map_read(block, 1)[0].disk);
    plain_disks.insert(plain.map_read(block, 1)[0].disk);
  }
  EXPECT_EQ(plain_disks.size(), 1u);
  EXPECT_EQ(striped_disks.size(), 4u);
}

TEST(Raid10, Validation) {
  EXPECT_THROW(Raid10Layout(4, kBlocks, kPhysical, 0), std::invalid_argument);
  EXPECT_THROW(Raid10Layout(4, kPhysical - 1, kPhysical, 64),
               std::invalid_argument);
}

TEST(Raid10, FactoryAndName) {
  LayoutConfig config;
  config.organization = Organization::kRaid10;
  config.data_disks = 4;
  config.data_blocks_per_disk = kBlocks;
  config.physical_blocks_per_disk = kPhysical;
  config.striping_unit_blocks = 2;
  auto layout = make_layout(config);
  EXPECT_EQ(layout->organization(), Organization::kRaid10);
  EXPECT_EQ(layout->total_disks(), 8);
  EXPECT_EQ(to_string(Organization::kRaid10), "RAID10");
}

}  // namespace
}  // namespace raidsim
