// Differential guard for the fail-slow machinery: with injection off and
// tail policies disabled, a run must be BIT-IDENTICAL to one that never
// heard of fail-slow -- same events executed, same response-time moments,
// same per-disk counters -- on both the classic and the sharded engine.
// This is the contract that lets the feature ship enabled-by-compile,
// disabled-by-default.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "fault/slowdown_injector.hpp"
#include "runner/sharded_sim.hpp"

namespace raidsim {
namespace {

SimulationConfig base_config(Organization org) {
  SimulationConfig config;
  config.organization = org;
  config.array_data_disks = 10;
  config.cached = false;
  return config;
}

Metrics run_classic(const SimulationConfig& config, const std::string& trace,
                    double scale, bool attach_disabled_injector) {
  WorkloadOptions wo;
  wo.scale = scale;
  auto stream = make_workload(trace, wo);
  Simulator sim(config, stream->geometry());
  std::unique_ptr<SlowdownInjector> injector;
  if (attach_disabled_injector) {
    std::vector<ArrayController*> arrays;
    for (int a = 0; a < sim.arrays(); ++a)
      arrays.push_back(&sim.mutable_controller(a));
    // Default config: enabled() is false, so arm() installs nothing.
    injector = std::make_unique<SlowdownInjector>(sim.event_queue(), arrays,
                                                  SlowdownConfig{});
    injector->arm();
    EXPECT_FALSE(injector->armed());
  }
  return sim.run(*stream);
}

Metrics run_sharded(SimulationConfig config, const std::string& trace,
                    double scale, int shards) {
  config.shards = shards;
  config.shard_threads = 2;
  WorkloadOptions wo;
  wo.scale = scale;
  auto stream = make_workload(trace, wo);
  return run_sharded_simulation(config, *stream, wo.seed);
}

// Exact equality, not near-equality: EXPECT_EQ on doubles on purpose.
void expect_identical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.elapsed_ms, b.elapsed_ms);
  EXPECT_EQ(a.events_executed, b.events_executed);

  EXPECT_EQ(a.response_all.count(), b.response_all.count());
  EXPECT_EQ(a.response_all.mean(), b.response_all.mean());
  EXPECT_EQ(a.response_all.p99(), b.response_all.p99());
  EXPECT_EQ(a.response_all.p999(), b.response_all.p999());
  EXPECT_EQ(a.response_read.mean(), b.response_read.mean());
  EXPECT_EQ(a.response_write.mean(), b.response_write.mean());

  EXPECT_EQ(a.disk_totals.reads, b.disk_totals.reads);
  EXPECT_EQ(a.disk_totals.writes, b.disk_totals.writes);
  EXPECT_EQ(a.disk_totals.busy_ms, b.disk_totals.busy_ms);
  EXPECT_EQ(a.disk_totals.queue_ms, b.disk_totals.queue_ms);
  EXPECT_EQ(a.disk_totals.slow_ops, b.disk_totals.slow_ops);
  EXPECT_EQ(a.disk_totals.slowdown_ms, b.disk_totals.slowdown_ms);

  EXPECT_EQ(a.controller.read_requests, b.controller.read_requests);
  EXPECT_EQ(a.controller.write_requests, b.controller.write_requests);
  EXPECT_EQ(a.controller.timeouts_fired, b.controller.timeouts_fired);
  EXPECT_EQ(a.controller.hedged_reads, b.controller.hedged_reads);
  EXPECT_EQ(a.controller.hedge_wins, b.controller.hedge_wins);
  EXPECT_EQ(a.controller.redirected_reads, b.controller.redirected_reads);
  EXPECT_EQ(a.controller.quarantine_reroutes,
            b.controller.quarantine_reroutes);

  ASSERT_EQ(a.response_per_array.size(), b.response_per_array.size());
  for (std::size_t i = 0; i < a.response_per_array.size(); ++i) {
    EXPECT_EQ(a.response_per_array[i].count(),
              b.response_per_array[i].count());
    EXPECT_EQ(a.response_per_array[i].mean(), b.response_per_array[i].mean());
    EXPECT_EQ(a.response_per_array[i].p99(), b.response_per_array[i].p99());
  }
  ASSERT_EQ(a.disk_op_latency.size(), b.disk_op_latency.size());
  for (std::size_t i = 0; i < a.disk_op_latency.size(); ++i) {
    EXPECT_EQ(a.disk_op_latency[i].count(), b.disk_op_latency[i].count());
    EXPECT_EQ(a.disk_op_latency[i].mean(), b.disk_op_latency[i].mean());
    EXPECT_EQ(a.disk_op_latency[i].max(), b.disk_op_latency[i].max());
  }
}

TEST(FailSlowDifferential, DisabledInjectorIsBitIdenticalClassic) {
  for (auto org : {Organization::kRaid5, Organization::kMirror}) {
    SCOPED_TRACE(to_string(org));
    const SimulationConfig config = base_config(org);
    const Metrics plain = run_classic(config, "trace2", 0.05, false);
    const Metrics with_injector = run_classic(config, "trace2", 0.05, true);
    ASSERT_GT(plain.requests, 0u);
    expect_identical(plain, with_injector);
    EXPECT_EQ(plain.disk_totals.slow_ops, 0u);
    EXPECT_EQ(plain.controller.hedged_reads, 0u);
    EXPECT_EQ(plain.controller.timeouts_fired, 0u);
  }
}

TEST(FailSlowDifferential, DisabledTailPolicyIsBitIdenticalClassic) {
  const SimulationConfig plain_config = base_config(Organization::kRaid5);
  // Knobs set but the master switch off: tail_read must take the exact
  // same path as a build that predates the feature.
  SimulationConfig armed_config = plain_config;
  armed_config.tail.enabled = false;
  armed_config.tail.read_deadline_ms = 100.0;
  armed_config.tail.hedge_delay_ms = 20.0;
  armed_config.tail.redirect_on_slow = true;
  armed_config.tail.reconstruct_on_slow = true;

  const Metrics plain = run_classic(plain_config, "trace2", 0.05, false);
  const Metrics armed = run_classic(armed_config, "trace2", 0.05, false);
  ASSERT_GT(plain.requests, 0u);
  expect_identical(plain, armed);
}

TEST(FailSlowDifferential, ShardedMergeMatchesClassicTailFields) {
  // The new per-array / per-disk recorders must merge to the 1-shard
  // values bit-for-bit at any shard count. trace2 at N=10 is a single
  // array, so partition it into 5 small mirrored arrays instead.
  SimulationConfig config = base_config(Organization::kMirror);
  config.array_data_disks = 2;
  const Metrics classic = run_sharded(config, "trace2", 0.05, 1);
  ASSERT_GT(classic.requests, 0u);
  ASSERT_GT(classic.arrays, 1);
  ASSERT_EQ(classic.response_per_array.size(),
            static_cast<std::size_t>(classic.arrays));
  ASSERT_EQ(classic.disk_op_latency.size(),
            static_cast<std::size_t>(classic.total_disks));
  for (int shards : {2, classic.arrays}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    expect_identical(classic, run_sharded(config, "trace2", 0.05, shards));
  }
}

}  // namespace
}  // namespace raidsim
