// HealthMonitor: automatic spare allocation + rebuild, double-failure
// data-loss detection (graceful, recorded, no crash), spare-pool
// exhaustion and replenishment, and the fail-slow detector's
// quarantine/unquarantine state machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "array/uncached_controller.hpp"
#include "fault/health_monitor.hpp"
#include "obs/metrics_registry.hpp"

namespace raidsim {
namespace {

class HealthMonitorTest : public ::testing::Test {
 protected:
  ArrayController::Config config(Organization org, int n = 4) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 360;  // 2 cylinders: fast rebuilds
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  HealthMonitor::Options options(int spares) {
    HealthMonitor::Options opt;
    opt.hot_spares = spares;
    opt.rebuild.blocks_per_pass = 60;
    return opt;
  }

  bool has_event(const HealthMonitor& m, HealthMonitor::EventKind kind) {
    return std::any_of(m.events().begin(), m.events().end(),
                       [kind](const auto& e) { return e.kind == kind; });
  }
};

TEST_F(HealthMonitorTest, SpareAllocationTriggersAutomaticRebuild) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, options(1));

  monitor.on_disk_failure(0, 2);
  EXPECT_EQ(c.failed_disk(), 2);
  EXPECT_EQ(monitor.spares_available(), 0);
  EXPECT_TRUE(monitor.rebuild_active(0));
  eq.run();
  EXPECT_EQ(monitor.rebuilds_completed(), 1);
  EXPECT_EQ(c.failed_disk(), -1);
  EXPECT_TRUE(monitor.failed_disks(0).empty());
  EXPECT_FALSE(monitor.data_loss());
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kSpareAllocated));
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kRebuildStarted));
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kRebuildCompleted));
}

TEST_F(HealthMonitorTest, SpareSwapDelayDefersRebuild) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  auto opt = options(1);
  opt.spare_swap_ms = 500.0;
  HealthMonitor monitor(eq, c, opt);
  monitor.on_disk_failure(0, 1);
  EXPECT_FALSE(monitor.rebuild_active(0));
  eq.run_until(499.0);
  EXPECT_FALSE(monitor.rebuild_active(0));
  eq.run();
  EXPECT_EQ(monitor.rebuilds_completed(), 1);
}

TEST_F(HealthMonitorTest, DoubleFailureInParityGroupRecordsDataLoss) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, options(0));  // no spare: stays degraded

  monitor.on_disk_failure(0, 0);
  EXPECT_FALSE(monitor.data_loss());
  monitor.on_disk_failure(0, 3);  // second concurrent failure: loss
  ASSERT_TRUE(monitor.data_loss());
  ASSERT_EQ(monitor.losses().size(), 1u);
  const auto& loss = monitor.losses()[0];
  EXPECT_EQ(loss.array, 0);
  EXPECT_EQ(loss.failed_disks, (std::vector<int>{0, 3}));
  EXPECT_GT(loss.lost_blocks, 0);
  EXPECT_TRUE(monitor.array_lost(0));
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kDataLoss));

  // Graceful degradation: the array still serves what it can.
  double done = -1.0;
  c.submit(ArrayRequest{0, 1, false}, [&](SimTime t) { done = t; });
  eq.run();
  EXPECT_GE(done, 0.0);
}

TEST_F(HealthMonitorTest, MirrorTwinFailureIsLossButOtherPairIsNot) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kMirror, 3));  // 6 disks
  HealthMonitor monitor(eq, c, options(0));

  monitor.on_disk_failure(0, 0);
  monitor.on_disk_failure(0, 4);  // different pair: redundancy holds
  EXPECT_FALSE(monitor.data_loss());
  EXPECT_EQ(monitor.failed_disks(0).size(), 2u);

  monitor.on_disk_failure(0, 1);  // twin of disk 0: pair gone
  EXPECT_TRUE(monitor.data_loss());
  EXPECT_EQ(monitor.losses()[0].failed_disks, (std::vector<int>{0, 4, 1}));
}

TEST_F(HealthMonitorTest, ConcurrentMirrorPairFailuresRecoverSerially) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kMirror, 3));
  HealthMonitor monitor(eq, c, options(2));

  monitor.on_disk_failure(0, 0);
  monitor.on_disk_failure(0, 2);  // other pair, queued behind disk 0
  EXPECT_EQ(c.failed_disk(), 0);
  eq.run();
  EXPECT_EQ(monitor.rebuilds_completed(), 2);
  EXPECT_TRUE(monitor.failed_disks(0).empty());
  EXPECT_FALSE(monitor.data_loss());
  EXPECT_EQ(c.failed_disk(), -1);
}

TEST_F(HealthMonitorTest, SparePoolExhaustionWaitsForReplenishment) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, options(0));

  monitor.on_disk_failure(0, 1);
  eq.run();
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kSpareExhausted));
  EXPECT_FALSE(monitor.rebuild_active(0));
  EXPECT_EQ(c.failed_disk(), 1);  // still degraded

  monitor.add_spares(1);
  EXPECT_TRUE(monitor.rebuild_active(0));
  eq.run();
  EXPECT_EQ(monitor.rebuilds_completed(), 1);
  EXPECT_EQ(monitor.spares_available(), 0);
  EXPECT_EQ(c.failed_disk(), -1);
}

TEST_F(HealthMonitorTest, BaseOrganizationLosesDataOnEveryFailure) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kBase));
  HealthMonitor monitor(eq, c, options(1));
  monitor.on_disk_failure(0, 2);
  EXPECT_TRUE(monitor.data_loss());
  EXPECT_FALSE(monitor.rebuild_active(0));  // nothing to rebuild from
}

TEST_F(HealthMonitorTest, DuplicateFailureReportIsIdempotent) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, options(0));
  monitor.on_disk_failure(0, 1);
  monitor.on_disk_failure(0, 1);  // e.g. injector + retry exhaustion
  EXPECT_FALSE(monitor.data_loss());
  EXPECT_EQ(monitor.failed_disks(0).size(), 1u);
}

// ---- hot-spare exhaustion under a second failure (regression guards:
// ---- the monitor must account the loss and never touch a spare that
// ---- does not exist).

TEST_F(HealthMonitorTest, SecondFailureWithExhaustedPoolIsGracefulLoss) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, options(1));

  monitor.on_disk_failure(0, 0);  // consumes the only spare, rebuild starts
  EXPECT_EQ(monitor.spares_available(), 0);
  EXPECT_TRUE(monitor.rebuild_active(0));

  // Second failure mid-rebuild with the pool empty: two disks of one
  // parity group down at once -- data loss, recorded, no crash, and no
  // attempt to allocate the spare that is not there.
  monitor.on_disk_failure(0, 3);
  EXPECT_TRUE(monitor.data_loss());
  EXPECT_TRUE(monitor.array_lost(0));
  ASSERT_EQ(monitor.losses().size(), 1u);
  const auto& loss = monitor.losses()[0];
  EXPECT_EQ(loss.array, 0);
  ASSERT_EQ(loss.failed_disks.size(), 2u);
  EXPECT_GT(loss.lost_blocks, 0);
  EXPECT_EQ(monitor.spares_available(), 0);

  eq.run();  // whatever rebuild work was in flight drains without UB
  EXPECT_TRUE(monitor.array_lost(0));
}

TEST_F(HealthMonitorTest, SpareArrivingAfterLossIsNotConsumed) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kMirror));
  HealthMonitor monitor(eq, c, options(0));

  const int twin = c.layout().mirror_of(0);
  ASSERT_GE(twin, 0);
  monitor.on_disk_failure(0, 0);
  monitor.on_disk_failure(0, twin);  // pair gone: loss
  EXPECT_TRUE(monitor.data_loss());
  EXPECT_TRUE(monitor.array_lost(0));
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kSpareExhausted));

  // A replacement arriving after the array is lost stays in the pool:
  // there is nothing left to rebuild onto it.
  monitor.add_spares(1);
  eq.run();
  EXPECT_EQ(monitor.spares_available(), 1);
  EXPECT_EQ(monitor.rebuilds_completed(), 0);
  EXPECT_FALSE(monitor.rebuild_active(0));
}

// ---- fail-slow detector: EWMA median check -> quarantine -> recovery ->
// ---- release.

TEST_F(HealthMonitorTest, SlowDiskIsDetectedQuarantinedAndReleased) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  auto opt = options(0);
  opt.slow_disk.check_interval_ms = 50.0;
  opt.slow_disk.ewma_threshold = 3.0;
  opt.slow_disk.quarantine_after = 3;
  opt.slow_disk.unquarantine_after = 3;
  HealthMonitor monitor(eq, c, opt);

  // Disk 2 turns fail-slow: every op pays 60 extra ms. (Moderate on
  // purpose: the detector ignores disks with < min_ops completions, and
  // a crippled disk serving one op per 200+ ms would not finish its
  // warm-up inside the test horizon.)
  c.disks()[2]->set_slowdown_hook(
      [](const DiskRequest&, SimTime, double) { return 60.0; });

  int completed = 0;
  auto feed = [&](double start_ms, int count) {
    for (int i = 0; i < count; ++i) {
      const std::int64_t block = (static_cast<std::int64_t>(i) * 37) % 1440;
      eq.schedule_at(start_ms + i * 5.0, [&c, &completed, block] {
        c.submit(ArrayRequest{block, 1, false},
                 [&completed](SimTime) { ++completed; });
      });
    }
  };

  feed(0.0, 400);
  monitor.start_slow_checks();
  EXPECT_TRUE(monitor.slow_checks_active());
  // The detector tick reschedules itself forever; run to a horizon.
  eq.run_until(2500.0);
  EXPECT_GT(monitor.slow_detections(), 0u);
  EXPECT_GE(monitor.quarantines(), 1u);
  EXPECT_TRUE(c.is_quarantined(2));
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kDiskSlow));
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kQuarantined));

  // The disk heals. With the tail policy off the quarantined disk still
  // serves demand reads, so its EWMA recovers in place and the detector
  // releases it.
  c.disks()[2]->set_slowdown_hook(nullptr);
  feed(2500.0, 400);
  eq.run_until(6000.0);
  EXPECT_GE(monitor.unquarantines(), 1u);
  EXPECT_FALSE(c.is_quarantined(2));
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kUnquarantined));

  monitor.stop_slow_checks();
  EXPECT_FALSE(monitor.slow_checks_active());
  eq.run();  // queue drains now that the tick is gone
  EXPECT_EQ(completed, 800);
}

TEST_F(HealthMonitorTest, TeardownReleasesQuarantineGauge) {
  // The quarantine gauge is process-global; a run that ends with disks
  // still quarantined must give its contribution back on teardown or a
  // long-lived daemon's scrape drifts upward forever.
  Gauge& gauge = MetricsRegistry::instance().gauge(
      "raidsim_health_quarantined_disks", "Disks currently quarantined");
  const double baseline = gauge.value();
  {
    EventQueue eq;
    UncachedController c(eq, config(Organization::kRaid5));
    auto opt = options(0);
    opt.slow_disk.check_interval_ms = 50.0;
    opt.slow_disk.ewma_threshold = 3.0;
    opt.slow_disk.quarantine_after = 3;
    HealthMonitor monitor(eq, c, opt);
    c.disks()[2]->set_slowdown_hook(
        [](const DiskRequest&, SimTime, double) { return 60.0; });
    for (int i = 0; i < 400; ++i) {
      const std::int64_t block = (static_cast<std::int64_t>(i) * 37) % 1440;
      eq.schedule_at(i * 5.0, [&c, block] {
        c.submit(ArrayRequest{block, 1, false}, [](SimTime) {});
      });
    }
    monitor.start_slow_checks();
    eq.run_until(2500.0);
    ASSERT_TRUE(c.is_quarantined(2));
    EXPECT_DOUBLE_EQ(gauge.value(), baseline + 1.0);
    monitor.stop_slow_checks();
  }  // monitor destroyed with disk 2 still quarantined
  EXPECT_DOUBLE_EQ(gauge.value(), baseline);
}

TEST_F(HealthMonitorTest, DetectorOffByDefaultSchedulesNothing) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, options(1));  // check_interval_ms == 0
  monitor.start_slow_checks();
  EXPECT_FALSE(monitor.slow_checks_active());
  eq.run();
  EXPECT_EQ(eq.executed(), 0u);
  EXPECT_EQ(monitor.slow_detections(), 0u);
}

TEST_F(HealthMonitorTest, Validation) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  EXPECT_THROW(HealthMonitor(eq, std::vector<ArrayController*>{},
                             HealthMonitor::Options{}),
               std::invalid_argument);
  HealthMonitor monitor(eq, c, options(1));
  EXPECT_THROW(monitor.on_disk_failure(0, 99), std::invalid_argument);
  EXPECT_THROW(monitor.add_spares(-1), std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
