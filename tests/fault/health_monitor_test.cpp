// HealthMonitor: automatic spare allocation + rebuild, double-failure
// data-loss detection (graceful, recorded, no crash), spare-pool
// exhaustion and replenishment.
#include <gtest/gtest.h>

#include <algorithm>

#include "array/uncached_controller.hpp"
#include "fault/health_monitor.hpp"

namespace raidsim {
namespace {

class HealthMonitorTest : public ::testing::Test {
 protected:
  ArrayController::Config config(Organization org, int n = 4) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 360;  // 2 cylinders: fast rebuilds
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  HealthMonitor::Options options(int spares) {
    HealthMonitor::Options opt;
    opt.hot_spares = spares;
    opt.rebuild.blocks_per_pass = 60;
    return opt;
  }

  bool has_event(const HealthMonitor& m, HealthMonitor::EventKind kind) {
    return std::any_of(m.events().begin(), m.events().end(),
                       [kind](const auto& e) { return e.kind == kind; });
  }
};

TEST_F(HealthMonitorTest, SpareAllocationTriggersAutomaticRebuild) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, options(1));

  monitor.on_disk_failure(0, 2);
  EXPECT_EQ(c.failed_disk(), 2);
  EXPECT_EQ(monitor.spares_available(), 0);
  EXPECT_TRUE(monitor.rebuild_active(0));
  eq.run();
  EXPECT_EQ(monitor.rebuilds_completed(), 1);
  EXPECT_EQ(c.failed_disk(), -1);
  EXPECT_TRUE(monitor.failed_disks(0).empty());
  EXPECT_FALSE(monitor.data_loss());
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kSpareAllocated));
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kRebuildStarted));
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kRebuildCompleted));
}

TEST_F(HealthMonitorTest, SpareSwapDelayDefersRebuild) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  auto opt = options(1);
  opt.spare_swap_ms = 500.0;
  HealthMonitor monitor(eq, c, opt);
  monitor.on_disk_failure(0, 1);
  EXPECT_FALSE(monitor.rebuild_active(0));
  eq.run_until(499.0);
  EXPECT_FALSE(monitor.rebuild_active(0));
  eq.run();
  EXPECT_EQ(monitor.rebuilds_completed(), 1);
}

TEST_F(HealthMonitorTest, DoubleFailureInParityGroupRecordsDataLoss) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, options(0));  // no spare: stays degraded

  monitor.on_disk_failure(0, 0);
  EXPECT_FALSE(monitor.data_loss());
  monitor.on_disk_failure(0, 3);  // second concurrent failure: loss
  ASSERT_TRUE(monitor.data_loss());
  ASSERT_EQ(monitor.losses().size(), 1u);
  const auto& loss = monitor.losses()[0];
  EXPECT_EQ(loss.array, 0);
  EXPECT_EQ(loss.failed_disks, (std::vector<int>{0, 3}));
  EXPECT_GT(loss.lost_blocks, 0);
  EXPECT_TRUE(monitor.array_lost(0));
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kDataLoss));

  // Graceful degradation: the array still serves what it can.
  double done = -1.0;
  c.submit(ArrayRequest{0, 1, false}, [&](SimTime t) { done = t; });
  eq.run();
  EXPECT_GE(done, 0.0);
}

TEST_F(HealthMonitorTest, MirrorTwinFailureIsLossButOtherPairIsNot) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kMirror, 3));  // 6 disks
  HealthMonitor monitor(eq, c, options(0));

  monitor.on_disk_failure(0, 0);
  monitor.on_disk_failure(0, 4);  // different pair: redundancy holds
  EXPECT_FALSE(monitor.data_loss());
  EXPECT_EQ(monitor.failed_disks(0).size(), 2u);

  monitor.on_disk_failure(0, 1);  // twin of disk 0: pair gone
  EXPECT_TRUE(monitor.data_loss());
  EXPECT_EQ(monitor.losses()[0].failed_disks, (std::vector<int>{0, 4, 1}));
}

TEST_F(HealthMonitorTest, ConcurrentMirrorPairFailuresRecoverSerially) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kMirror, 3));
  HealthMonitor monitor(eq, c, options(2));

  monitor.on_disk_failure(0, 0);
  monitor.on_disk_failure(0, 2);  // other pair, queued behind disk 0
  EXPECT_EQ(c.failed_disk(), 0);
  eq.run();
  EXPECT_EQ(monitor.rebuilds_completed(), 2);
  EXPECT_TRUE(monitor.failed_disks(0).empty());
  EXPECT_FALSE(monitor.data_loss());
  EXPECT_EQ(c.failed_disk(), -1);
}

TEST_F(HealthMonitorTest, SparePoolExhaustionWaitsForReplenishment) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, options(0));

  monitor.on_disk_failure(0, 1);
  eq.run();
  EXPECT_TRUE(has_event(monitor, HealthMonitor::EventKind::kSpareExhausted));
  EXPECT_FALSE(monitor.rebuild_active(0));
  EXPECT_EQ(c.failed_disk(), 1);  // still degraded

  monitor.add_spares(1);
  EXPECT_TRUE(monitor.rebuild_active(0));
  eq.run();
  EXPECT_EQ(monitor.rebuilds_completed(), 1);
  EXPECT_EQ(monitor.spares_available(), 0);
  EXPECT_EQ(c.failed_disk(), -1);
}

TEST_F(HealthMonitorTest, BaseOrganizationLosesDataOnEveryFailure) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kBase));
  HealthMonitor monitor(eq, c, options(1));
  monitor.on_disk_failure(0, 2);
  EXPECT_TRUE(monitor.data_loss());
  EXPECT_FALSE(monitor.rebuild_active(0));  // nothing to rebuild from
}

TEST_F(HealthMonitorTest, DuplicateFailureReportIsIdempotent) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, options(0));
  monitor.on_disk_failure(0, 1);
  monitor.on_disk_failure(0, 1);  // e.g. injector + retry exhaustion
  EXPECT_FALSE(monitor.data_loss());
  EXPECT_EQ(monitor.failed_disks(0).size(), 1u);
}

TEST_F(HealthMonitorTest, Validation) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  EXPECT_THROW(HealthMonitor(eq, std::vector<ArrayController*>{},
                             HealthMonitor::Options{}),
               std::invalid_argument);
  HealthMonitor monitor(eq, c, options(1));
  EXPECT_THROW(monitor.on_disk_failure(0, 99), std::invalid_argument);
  EXPECT_THROW(monitor.add_spares(-1), std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
