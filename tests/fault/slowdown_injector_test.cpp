// SlowdownInjector: deterministic fail-slow injection (transient
// spikes, sticky degradation, periodic stalls), hook lifecycle, and
// seed-stable schedules.
#include <gtest/gtest.h>

#include "array/uncached_controller.hpp"
#include "fault/slowdown_injector.hpp"

namespace raidsim {
namespace {

ArrayController::Config base_config(Organization org = Organization::kRaid5,
                                    int n = 4) {
  ArrayController::Config cfg;
  cfg.layout.organization = org;
  cfg.layout.data_disks = n;
  cfg.layout.data_blocks_per_disk = 360;
  cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
  return cfg;
}

/// Submit `count` single-block reads spread over the array and run to
/// completion; returns the completion time of the last one.
SimTime drive_reads(EventQueue& eq, ArrayController& c, int count) {
  SimTime last = 0.0;
  for (int i = 0; i < count; ++i) {
    const std::int64_t block = (static_cast<std::int64_t>(i) * 37) % 1400;
    eq.schedule_at(i * 5.0, [&c, &last, block] {
      c.submit(ArrayRequest{block, 1, false},
               [&last](SimTime t) { last = std::max(last, t); });
    });
  }
  eq.run();
  return last;
}

TEST(SlowdownInjectorTest, DisabledConfigInstallsNothing) {
  EventQueue eq;
  UncachedController c(eq, base_config());
  SlowdownInjector injector(eq, c, SlowdownConfig{});
  injector.arm();
  EXPECT_FALSE(injector.armed());
  for (const auto& disk : c.disks())
    EXPECT_FALSE(disk->has_slowdown_hook());
  drive_reads(eq, c, 20);
  EXPECT_EQ(injector.spikes_injected(), 0u);
  EXPECT_EQ(injector.sticky_onsets(), 0u);
}

TEST(SlowdownInjectorTest, StickySlowdownStretchesServiceTimes) {
  SimTime baseline, degraded;
  std::uint64_t slow_ops = 0;
  double slowdown_ms = 0.0;
  for (const bool sticky : {false, true}) {
    EventQueue eq;
    UncachedController c(eq, base_config());
    SlowdownConfig config;
    config.manual_sticky = true;
    config.sticky_factor = 6.0;
    SlowdownInjector injector(eq, c, config);
    injector.arm();
    EXPECT_TRUE(injector.armed());
    if (sticky) injector.force_sticky(0, 1);
    const SimTime done = drive_reads(eq, c, 120);
    if (sticky) {
      degraded = done;
      slow_ops = c.disks()[1]->stats().slow_ops;
      slowdown_ms = c.disks()[1]->stats().slowdown_ms;
    } else {
      baseline = done;
    }
  }
  EXPECT_GT(degraded, baseline);
  EXPECT_GT(slow_ops, 0u);
  EXPECT_GT(slowdown_ms, 0.0);
}

TEST(SlowdownInjectorTest, ArmedButHealthyIsBitIdenticalToNoInjector) {
  // manual_sticky installs the hooks; with no disk forced sticky the
  // hook returns zero extra for every op, so the run must be exactly
  // the run without any injector.
  SimTime with_injector, without;
  std::uint64_t events_with = 0, events_without = 0;
  for (const bool attach : {false, true}) {
    EventQueue eq;
    UncachedController c(eq, base_config());
    SlowdownConfig config;
    config.manual_sticky = true;
    SlowdownInjector injector(eq, c, config);
    if (attach) injector.arm();
    const SimTime done = drive_reads(eq, c, 120);
    (attach ? with_injector : without) = done;
    (attach ? events_with : events_without) = eq.executed();
  }
  EXPECT_EQ(with_injector, without);
  EXPECT_EQ(events_with, events_without);
}

TEST(SlowdownInjectorTest, SpikeScheduleIsSeedStable) {
  auto run = [](std::uint64_t seed) {
    EventQueue eq;
    UncachedController c(eq, base_config());
    SlowdownConfig config;
    config.spike_per_op = 0.3;
    config.spike_ms_mean = 40.0;
    config.seed = seed;
    SlowdownInjector injector(eq, c, config);
    injector.arm();
    const SimTime done = drive_reads(eq, c, 150);
    return std::make_pair(done, injector.spikes_injected());
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a.first, b.first);       // identical trajectory, bit for bit
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0u);
  const auto c = run(8);
  EXPECT_NE(a.first, c.first);       // a different seed reshuffles spikes
}

TEST(SlowdownInjectorTest, PeriodicStallsDelayOpsInsideTheWindow) {
  EventQueue eq;
  UncachedController c(eq, base_config());
  SlowdownConfig config;
  config.stall_period_ms = 80.0;
  config.stall_duration_ms = 25.0;
  SlowdownInjector injector(eq, c, config);
  injector.arm();
  drive_reads(eq, c, 200);
  EXPECT_GT(injector.stalls_hit(), 0u);
  EXPECT_GT(c.disks()[0]->stats().slowdown_ms +
                c.disks()[1]->stats().slowdown_ms +
                c.disks()[2]->stats().slowdown_ms,
            0.0);
}

TEST(SlowdownInjectorTest, SpontaneousOnsetAndAutoHeal) {
  EventQueue eq;
  UncachedController c(eq, base_config());
  SlowdownConfig config;
  config.sticky_onset_mean_ms = 200.0;
  config.sticky_factor = 4.0;
  config.sticky_duration_ms = 300.0;
  config.seed = 11;
  SlowdownInjector injector(eq, c, config);
  injector.arm();
  // Healed disks re-arm their onset clock, so the injector keeps the
  // queue alive forever: run to a horizon, then stop() and drain.
  int completed = 0;
  for (int i = 0; i < 400; ++i) {
    const std::int64_t block = (static_cast<std::int64_t>(i) * 37) % 1400;
    eq.schedule_at(i * 5.0, [&c, &completed, block] {
      c.submit(ArrayRequest{block, 1, false},
               [&completed](SimTime) { ++completed; });
    });
  }
  eq.run_until(4000.0);
  injector.stop();  // cancel still-pending onset/heal clocks
  eq.run();
  EXPECT_EQ(completed, 400);
  EXPECT_GT(injector.sticky_onsets(), 0u);
}

TEST(SlowdownInjectorTest, RepairClearsStickyAndStopUninstalls) {
  EventQueue eq;
  UncachedController c(eq, base_config());
  SlowdownConfig config;
  config.manual_sticky = true;
  SlowdownInjector injector(eq, c, config);
  injector.arm();
  injector.force_sticky(0, 2);
  EXPECT_TRUE(injector.sticky_active(0, 2));
  injector.repair_disk(0, 2);
  EXPECT_FALSE(injector.sticky_active(0, 2));
  injector.stop();
  EXPECT_FALSE(injector.armed());
  for (const auto& disk : c.disks())
    EXPECT_FALSE(disk->has_slowdown_hook());
}

TEST(SlowdownInjectorTest, Validation) {
  EventQueue eq;
  UncachedController c(eq, base_config());
  SlowdownConfig bad;
  bad.spike_per_op = 1.5;
  EXPECT_THROW(SlowdownInjector(eq, c, bad), std::invalid_argument);
  bad = SlowdownConfig{};
  bad.sticky_factor = 0.5;
  EXPECT_THROW(SlowdownInjector(eq, c, bad), std::invalid_argument);
  bad = SlowdownConfig{};
  bad.stall_period_ms = 10.0;
  bad.stall_duration_ms = 20.0;
  EXPECT_THROW(SlowdownInjector(eq, c, bad), std::invalid_argument);
  EXPECT_THROW(
      SlowdownInjector(eq, std::vector<ArrayController*>{}, SlowdownConfig{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
