// ScrubProcess: the patrol read finds latent sector errors and repairs
// them through the controller's reconstruct-and-rewrite path; without
// redundancy the error is a recorded loss; failed disks are skipped.
#include <gtest/gtest.h>

#include "array/uncached_controller.hpp"
#include "fault/scrub.hpp"

namespace raidsim {
namespace {

class ScrubTest : public ::testing::Test {
 protected:
  ArrayController::Config config(Organization org, int n = 4) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 360;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  ScrubProcess::Options single_sweep() {
    ScrubProcess::Options opt;
    opt.blocks_per_pass = 60;
    return opt;  // sweep_interval_ms < 0: one sweep, then stop
  }
};

TEST_F(ScrubTest, FindsAndRepairsLatentError) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  const auto extent = c.layout().map_read(5, 1)[0];
  auto& disk = *c.disks()[static_cast<std::size_t>(extent.disk)];
  disk.plant_media_error(extent.start_block);
  ASSERT_EQ(disk.media_error_count(), 1u);

  ScrubProcess scrub(eq, c, single_sweep());
  scrub.start();
  eq.run();

  EXPECT_FALSE(scrub.running());
  EXPECT_EQ(scrub.stats().sweeps_completed, 1u);
  EXPECT_EQ(scrub.stats().errors_found, 1u);
  EXPECT_EQ(c.stats().media_errors, 1u);
  EXPECT_EQ(c.stats().media_repairs, 1u);  // reconstructed and remapped
  EXPECT_EQ(c.stats().media_losses, 0u);
  EXPECT_EQ(disk.media_error_count(), 0u);
  // Every block of every disk was patrolled.
  const auto span = c.layout().physical_blocks_used();
  EXPECT_EQ(scrub.stats().blocks_scrubbed,
            static_cast<std::uint64_t>(span) *
                static_cast<std::uint64_t>(c.layout().total_disks()));
}

TEST_F(ScrubTest, DemandReadRepairsMediaErrorInline) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  const auto extent = c.layout().map_read(7, 1)[0];
  auto& disk = *c.disks()[static_cast<std::size_t>(extent.disk)];
  disk.plant_media_error(extent.start_block);

  double done = -1.0;
  c.submit(ArrayRequest{7, 1, false}, [&](SimTime t) { done = t; });
  eq.run();

  EXPECT_GE(done, 0.0);
  EXPECT_EQ(c.stats().media_errors, 1u);
  EXPECT_EQ(c.stats().media_repairs, 1u);
  EXPECT_EQ(disk.media_error_count(), 0u);
}

TEST_F(ScrubTest, MediaErrorWithoutRedundancyIsRecordedLoss) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kBase));
  const auto extent = c.layout().map_read(3, 1)[0];
  auto& disk = *c.disks()[static_cast<std::size_t>(extent.disk)];
  disk.plant_media_error(extent.start_block);

  double done = -1.0;
  c.submit(ArrayRequest{3, 1, false}, [&](SimTime t) { done = t; });
  eq.run();

  EXPECT_GE(done, 0.0);  // graceful: the request still completes
  EXPECT_EQ(c.stats().media_errors, 1u);
  EXPECT_EQ(c.stats().media_losses, 1u);
  EXPECT_EQ(c.stats().media_repairs, 0u);
  EXPECT_GE(c.stats().unrecoverable, 1u);
  EXPECT_EQ(disk.media_error_count(), 0u);  // remapped (content lost)
}

TEST_F(ScrubTest, SkipsFailedDiskMidSweep) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  c.fail_disk(2);

  ScrubProcess scrub(eq, c, single_sweep());
  scrub.start();
  eq.run();

  EXPECT_EQ(scrub.stats().sweeps_completed, 1u);
  EXPECT_EQ(scrub.stats().disks_skipped, 1u);
  const auto span = c.layout().physical_blocks_used();
  EXPECT_EQ(scrub.stats().blocks_scrubbed,
            static_cast<std::uint64_t>(span) *
                static_cast<std::uint64_t>(c.layout().total_disks() - 1));
}

TEST_F(ScrubTest, ContinuousSweepsUntilStopped) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  auto opt = single_sweep();
  opt.sweep_interval_ms = 10.0;  // continuous patrol
  ScrubProcess scrub(eq, c, opt);
  scrub.start();
  eq.run_until(30000.0);
  EXPECT_GE(scrub.stats().sweeps_completed, 2u);
  scrub.stop();
  eq.run();  // terminates: no further sweeps are scheduled
  EXPECT_FALSE(scrub.running());
}

TEST_F(ScrubTest, Validation) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  ScrubProcess::Options bad;
  bad.blocks_per_pass = 0;
  EXPECT_THROW(ScrubProcess(eq, c, bad), std::invalid_argument);

  ScrubProcess scrub(eq, c, single_sweep());
  scrub.start();
  EXPECT_THROW(scrub.start(), std::logic_error);
}

}  // namespace
}  // namespace raidsim
