// Monte-Carlo MTTDL simulation vs the analytic model
// (core/reliability.hpp). Reliability parameters are scaled down
// (MTTF = 10,000 h instead of the paper's 100,000 h) so each lifetime
// ends after a few hundred failure/repair cycles at most. MTTR stays
// << MTTF/(N+1), keeping the analytic first-order approximation inside
// a few percent of the exact Markov value -- shrinking MTTF further
// would make the *approximation* (not the simulation) the outlier.
#include <gtest/gtest.h>

#include "fault/mttdl_sim.hpp"

namespace raidsim {
namespace {

MttdlConfig fast_config(Organization org, int total, int per_array) {
  MttdlConfig cfg;
  cfg.organization = org;
  cfg.total_data_disks = total;
  cfg.array_data_disks = per_array;
  cfg.params.disk_mttf_hours = 10000.0;
  cfg.params.disk_mttr_hours = 24.0;
  cfg.seed = 11;
  return cfg;
}

TEST(MttdlSimTest, MirrorAgreesWithAnalytic) {
  const auto est = simulate_mttdl(fast_config(Organization::kMirror, 4, 4),
                                  2000);
  EXPECT_EQ(est.lifetimes, 2000);
  EXPECT_GT(est.analytic_hours, 0.0);
  EXPECT_TRUE(est.agrees_within(1.3)) << "ratio " << est.ratio();
  EXPECT_LT(est.ci_low_hours, est.mean_hours);
  EXPECT_GT(est.ci_high_hours, est.mean_hours);
}

TEST(MttdlSimTest, Raid5AgreesWithAnalyticAtTwoArraySizes) {
  for (const int n : {4, 10}) {
    const auto est =
        simulate_mttdl(fast_config(Organization::kRaid5, n, n), 2000);
    EXPECT_TRUE(est.agrees_within(1.3))
        << "N=" << n << " ratio " << est.ratio();
    // Larger groups are less reliable: the analytic prediction holds in
    // the simulated means too.
    EXPECT_GT(est.analytic_hours, 0.0);
  }
}

TEST(MttdlSimTest, Raid10MatchesMirrorSemantics) {
  const auto mirror = simulate_mttdl(fast_config(Organization::kMirror, 6, 6),
                                     1500);
  const auto raid10 = simulate_mttdl(fast_config(Organization::kRaid10, 6, 6),
                                     1500);
  EXPECT_DOUBLE_EQ(mirror.analytic_hours, raid10.analytic_hours);
  EXPECT_TRUE(raid10.agrees_within(1.3)) << raid10.ratio();
}

TEST(MttdlSimTest, BaseScalesAsMttfOverD) {
  const auto est = simulate_mttdl(fast_config(Organization::kBase, 10, 10),
                                  2000);
  EXPECT_DOUBLE_EQ(est.analytic_hours, 10000.0 / 10.0);  // MTTF / D
  EXPECT_TRUE(est.agrees_within(1.15)) << est.ratio();

  // Doubling D halves the expected lifetime.
  const auto wide = simulate_mttdl(fast_config(Organization::kBase, 20, 10),
                                   2000);
  EXPECT_DOUBLE_EQ(wide.analytic_hours, 10000.0 / 20.0);
  EXPECT_NEAR(est.mean_hours / wide.mean_hours, 2.0, 0.3);
}

TEST(MttdlSimTest, FixedRepairWindowStillAgrees) {
  auto cfg = fast_config(Organization::kRaid5, 10, 10);
  cfg.exponential_repair = false;
  const auto est = simulate_mttdl(cfg, 2000);
  EXPECT_TRUE(est.agrees_within(1.3)) << est.ratio();
}

TEST(MttdlSimTest, DeterministicForAFixedSeed) {
  const auto a = simulate_mttdl(fast_config(Organization::kRaid5, 10, 10), 500);
  const auto b = simulate_mttdl(fast_config(Organization::kRaid5, 10, 10), 500);
  EXPECT_DOUBLE_EQ(a.mean_hours, b.mean_hours);
  EXPECT_DOUBLE_EQ(a.stddev_hours, b.stddev_hours);

  auto other = fast_config(Organization::kRaid5, 10, 10);
  other.seed = 12;
  EXPECT_NE(a.mean_hours, simulate_mttdl(other, 500).mean_hours);
}

TEST(MttdlSimTest, LifetimesArePositive) {
  const auto cfg = fast_config(Organization::kMirror, 2, 2);
  Rng rng(cfg.seed);
  for (int i = 0; i < 100; ++i)
    EXPECT_GT(simulate_lifetime_hours(cfg, rng), 0.0);
}

TEST(MttdlSimTest, Validation) {
  EXPECT_THROW(simulate_mttdl(fast_config(Organization::kRaid5, 10, 10), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
