// FaultInjector + the controller retry/backoff path: transient storms
// below the retry budget complete without data loss; a disk that
// exhausts its budget is declared dead and auto-recovered; whole-disk
// failure clocks fire stochastically and re-arm after rebuild.
#include <gtest/gtest.h>

#include <algorithm>

#include "array/uncached_controller.hpp"
#include "fault/fault_injector.hpp"

namespace raidsim {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  ArrayController::Config config(Organization org, int n = 4,
                                 int retry_budget = 8,
                                 std::int64_t blocks_per_disk = 360) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = blocks_per_disk;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    cfg.fault.retry_budget = retry_budget;
    cfg.fault.retry_backoff_ms = 1.0;
    return cfg;
  }

  HealthMonitor::Options monitor_options(int spares = 1) {
    HealthMonitor::Options opt;
    opt.hot_spares = spares;
    opt.rebuild.blocks_per_pass = 60;
    return opt;
  }

  /// Issue `count` sequential single-block reads/writes and run to
  /// completion; returns how many completed.
  int drive(UncachedController& c, EventQueue& eq, int count) {
    int completed = 0;
    for (int i = 0; i < count; ++i) {
      c.submit(ArrayRequest{(i * 37) % 1200, 1, i % 3 == 0},
               [&](SimTime) { ++completed; });
    }
    eq.run();
    return completed;
  }
};

TEST_F(FaultInjectorTest, TransientStormBelowBudgetCompletesWithoutLoss) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, monitor_options());
  FaultInjectorConfig fc;
  fc.transient_error_per_op = 0.3;  // heavy storm, but budget is 8
  fc.seed = 42;
  FaultInjector injector(eq, monitor, c, fc);
  injector.arm();

  const int completed = drive(c, eq, 100);
  injector.stop();
  eq.run();

  EXPECT_EQ(completed, 100);
  EXPECT_GT(c.stats().transient_retries, 0u);
  EXPECT_EQ(c.stats().retry_exhaustions, 0u);
  EXPECT_EQ(c.stats().unrecoverable, 0u);
  EXPECT_FALSE(monitor.data_loss());
  EXPECT_EQ(c.failed_disk(), -1);
}

TEST_F(FaultInjectorTest, RetryExhaustionDeclaresDiskDeadAndRecovers) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5, 4, /*budget=*/2));
  HealthMonitor monitor(eq, c, monitor_options());
  const int victim = c.layout().map_read(0, 1)[0].disk;
  // Deterministic hard hang of one disk: every op times out.
  c.disks()[static_cast<std::size_t>(victim)]->set_fault_evaluator(
      [](const DiskRequest&) { return DiskError::kTransient; });

  double done = -1.0;
  c.submit(ArrayRequest{0, 1, false}, [&](SimTime t) { done = t; });
  eq.run_until(5000.0);

  EXPECT_GE(done, 0.0);  // served via reconstruction after the disk died
  EXPECT_GE(c.stats().retry_exhaustions, 1u);
  EXPECT_EQ(c.stats().transient_retries, 2u);
  EXPECT_FALSE(monitor.data_loss());
  // The monitor saw the death and launched the rebuild; the rebuild
  // writes to the replacement (evaluator cleared = unit swapped).
  c.disks()[static_cast<std::size_t>(victim)]->set_fault_evaluator(nullptr);
  eq.run();
  EXPECT_EQ(monitor.rebuilds_completed(), 1);
  EXPECT_EQ(c.failed_disk(), -1);
}

TEST_F(FaultInjectorTest, WholeDiskFailuresFireAndRearmAfterRebuild) {
  EventQueue eq;
  // A tiny disk span keeps rebuild windows (~100 ms) far below the
  // failure interarrival time, so repairs win the race to data loss.
  UncachedController c(eq, config(Organization::kRaid5, 4, 8,
                                  /*blocks_per_disk=*/60));
  HealthMonitor monitor(eq, c, monitor_options(/*spares=*/100));
  FaultInjectorConfig fc;
  fc.disk_failure_mean_ms = 50000.0;
  fc.seed = 4;  // a seed whose repairs all win the race to data loss
  FaultInjector injector(eq, monitor, c, fc);
  injector.arm();

  eq.run_until(500000.0);
  injector.stop();
  eq.run();

  EXPECT_GT(injector.disk_failures_injected(), 1u);
  EXPECT_GT(monitor.rebuilds_completed(), 1);
  EXPECT_FALSE(monitor.data_loss());
  // Rebuilt disks return to service and can fail again: the re-armed
  // failure clocks make the same disk fail across multiple generations.
  int max_failures_one_disk = 0;
  for (int d = 0; d < c.layout().total_disks(); ++d) {
    int n = 0;
    for (const auto& e : monitor.events())
      if (e.kind == HealthMonitor::EventKind::kDiskFailure && e.disk == d) ++n;
    max_failures_one_disk = std::max(max_failures_one_disk, n);
  }
  EXPECT_GE(max_failures_one_disk, 2);
}

TEST_F(FaultInjectorTest, DeterministicAcrossRunsWithSameSeed) {
  auto run_once = [this](std::uint64_t seed) {
    EventQueue eq;
    UncachedController c(eq, config(Organization::kRaid5));
    HealthMonitor monitor(eq, c, monitor_options(8));
    FaultInjectorConfig fc;
    fc.disk_failure_mean_ms = 30000.0;
    fc.transient_error_per_op = 0.05;
    fc.seed = seed;
    FaultInjector injector(eq, monitor, c, fc);
    injector.arm();
    int completed = 0;
    for (int i = 0; i < 50; ++i)
      c.submit(ArrayRequest{(i * 91) % 1200, 1, i % 2 == 0},
               [&](SimTime) { ++completed; });
    eq.run_until(200000.0);
    injector.stop();
    eq.run();
    return std::make_tuple(completed, injector.disk_failures_injected(),
                           c.stats().transient_retries, eq.executed());
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(std::get<3>(run_once(99)), std::get<3>(run_once(100)));
}

TEST_F(FaultInjectorTest, HoursToMsConversion) {
  EXPECT_DOUBLE_EQ(FaultInjectorConfig::hours_to_ms(1.0), 3600000.0);
  EXPECT_DOUBLE_EQ(FaultInjectorConfig::hours_to_ms(100000.0, 1e6), 360000.0);
  EXPECT_THROW(FaultInjectorConfig::hours_to_ms(1.0, 0.0),
               std::invalid_argument);
}

TEST_F(FaultInjectorTest, ConfigValidation) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  HealthMonitor monitor(eq, c, monitor_options());
  FaultInjectorConfig fc;
  fc.transient_error_per_op = 1.5;
  EXPECT_THROW(FaultInjector(eq, monitor, c, fc), std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
