# Regression test for trace_analyzer input hardening: a truncated or
# corrupt trace JSON must exit non-zero with a line-numbered parse error,
# and a well-formed minimal trace must still be accepted.
#
# Invoked as:
#   cmake -DANALYZER=<path> -DWORK_DIR=<dir> -P trace_analyzer_corrupt_test.cmake

if(NOT ANALYZER OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DANALYZER=... -DWORK_DIR=... -P ...")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- 1. A well-formed minimal trace parses (guards the test itself). ---
set(GOOD "${WORK_DIR}/good.trace.json")
file(WRITE "${GOOD}" [=[
{"traceEvents":[
{"name":"read-data","cat":"disk","ph":"X","ts":0.0,"dur":100.0,"pid":1,"tid":1},
{"name":"host-read","cat":"host","ph":"b","id":7,"ts":0.0,"pid":1,"tid":0},
{"name":"host-read","cat":"host","ph":"e","id":7,"ts":250.0,"pid":1,"tid":0}
]}
]=])
execute_process(COMMAND "${ANALYZER}" "${GOOD}"
  RESULT_VARIABLE good_rc OUTPUT_VARIABLE good_out ERROR_VARIABLE good_err)
if(NOT good_rc EQUAL 0)
  message(FATAL_ERROR "well-formed trace rejected (rc=${good_rc}): ${good_err}")
endif()

# --- 2. Truncated mid-record: non-zero exit + line-numbered error. ---
set(BAD "${WORK_DIR}/truncated.trace.json")
file(WRITE "${BAD}" [=[
{"traceEvents":[
{"name":"read-data","cat":"disk","ph":"X","ts":0.0,"dur":100.0,"pid":1,"tid":1},
{"name":"host-read","cat":"host","ph":"b","id":7,"ts":0.
]=])
execute_process(COMMAND "${ANALYZER}" "${BAD}"
  RESULT_VARIABLE bad_rc OUTPUT_VARIABLE bad_out ERROR_VARIABLE bad_err)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR "truncated trace accepted; expected non-zero exit")
endif()
if(NOT bad_err MATCHES "line [0-9]+")
  message(FATAL_ERROR "truncated-trace error lacks a line number: ${bad_err}")
endif()

# --- 3. Trailing garbage after the document is also an error. ---
set(TRAILING "${WORK_DIR}/trailing.trace.json")
file(WRITE "${TRAILING}" "{\"traceEvents\":[]} and then some garbage\n")
execute_process(COMMAND "${ANALYZER}" "${TRAILING}"
  RESULT_VARIABLE trail_rc OUTPUT_VARIABLE trail_out ERROR_VARIABLE trail_err)
if(trail_rc EQUAL 0)
  message(FATAL_ERROR "trailing garbage accepted; expected non-zero exit")
endif()

# --- 4. Empty "ph" value must be a parse error, not a silent skip. ---
set(EMPTYPH "${WORK_DIR}/empty_ph.trace.json")
file(WRITE "${EMPTYPH}"
  "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"\",\"ts\":0}]}\n")
execute_process(COMMAND "${ANALYZER}" "${EMPTYPH}"
  RESULT_VARIABLE ph_rc OUTPUT_VARIABLE ph_out ERROR_VARIABLE ph_err)
if(ph_rc EQUAL 0)
  message(FATAL_ERROR "empty ph accepted; expected non-zero exit")
endif()

message(STATUS "trace_analyzer corrupt-input hardening: all cases rejected")
