#include "crash/auditor.hpp"

#include <gtest/gtest.h>

#include "array/uncached_controller.hpp"

namespace raidsim {
namespace {

// Exercises the shadow model's generation semantics directly through the
// WriteAuditHooks interface; no simulated I/O is involved.
class AuditorModelTest : public ::testing::Test {
 protected:
  AuditorModelTest()
      : controller_(eq_, config(Organization::kRaid5)),
        auditor_(controller_) {}

  static ArrayController::Config config(Organization org, int n = 4) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 1800;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  /// A full, correct stripe update for one block: write data, then
  /// recompute parity covering the new generation.
  void clean_write(std::int64_t block) {
    const auto gen = auditor_.host_write(block);
    auditor_.data_durable(block, gen);
    auditor_.parity_durable({block, gen, 0}, /*recompute=*/true);
    auditor_.acknowledge(block, gen);
  }

  /// Another logical block in the same parity stripe as `block`.
  std::int64_t stripe_sibling(std::int64_t block) {
    const auto key = parity_key(block);
    for (std::int64_t b = 0; b < controller_.layout().logical_capacity();
         ++b) {
      if (b != block && parity_key(b) == key) return b;
    }
    ADD_FAILURE() << "no stripe sibling for block " << block;
    return -1;
  }

  std::pair<int, std::int64_t> parity_key(std::int64_t block) {
    const auto plans = controller_.layout().map_write(block, 1);
    EXPECT_FALSE(plans.empty());
    EXPECT_TRUE(plans.front().parity.valid());
    return {plans.front().parity.disk, plans.front().parity.start_block};
  }

  EventQueue eq_;
  UncachedController controller_;
  ShadowAuditor auditor_;
};

TEST_F(AuditorModelTest, CleanUpdateAuditsClean) {
  clean_write(7);
  clean_write(42);
  const auto report = auditor_.audit();
  EXPECT_EQ(report.blocks_checked, 2u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.write_holes, 0u);
  EXPECT_EQ(report.lost_writes, 0u);
  EXPECT_EQ(auditor_.first_inconsistent_block(), -1);
}

TEST_F(AuditorModelTest, DataWithoutParityIsAWriteHole) {
  clean_write(7);
  // Second update: the data lands, the parity write is lost in a crash.
  const auto gen = auditor_.host_write(7);
  auditor_.data_durable(7, gen);
  const auto report = auditor_.audit();
  EXPECT_EQ(report.write_holes, 1u);
  EXPECT_EQ(report.stripes_inconsistent, 1u);
  EXPECT_EQ(auditor_.first_inconsistent_block(), 7);
}

TEST_F(AuditorModelTest, ParityWithoutDataIsAWriteHole) {
  clean_write(7);
  // The parity delta lands (computed against the old data), the data
  // write is lost: cover is ahead of disk.
  const auto gen = auditor_.host_write(7);
  auditor_.parity_durable({7, gen, gen - 1}, /*recompute=*/false);
  const auto report = auditor_.audit();
  EXPECT_EQ(report.write_holes, 1u);
}

TEST_F(AuditorModelTest, DeltaAgainstStaleCoverPoisons) {
  clean_write(7);
  const auto g2 = auditor_.host_write(7);
  auditor_.data_durable(7, g2);
  // Delta computed against generation g2 - 2 (stale): poisoned, and the
  // cover no longer matches any state -- a persistent hole.
  auditor_.parity_durable({7, g2, g2 - 2}, /*recompute=*/false);
  EXPECT_TRUE(auditor_.poisoned(7));
  EXPECT_EQ(auditor_.audit().write_holes, 1u);
  // Even a later, correctly-assumed delta cannot heal a poisoned cover.
  const auto g3 = auditor_.host_write(7);
  auditor_.data_durable(7, g3);
  auditor_.parity_durable({7, g3, g2}, /*recompute=*/false);
  EXPECT_TRUE(auditor_.poisoned(7));
  EXPECT_EQ(auditor_.audit().write_holes, 1u);
}

TEST_F(AuditorModelTest, RecomputeClearsPoison) {
  clean_write(7);
  const auto g2 = auditor_.host_write(7);
  auditor_.data_durable(7, g2);
  auditor_.parity_durable({7, g2, 0}, /*recompute=*/false);  // stale delta
  EXPECT_TRUE(auditor_.poisoned(7));
  auditor_.parity_durable({7, g2, 0}, /*recompute=*/true);
  EXPECT_FALSE(auditor_.poisoned(7));
  EXPECT_TRUE(auditor_.audit().clean());
}

TEST_F(AuditorModelTest, ResyncHealsTheWholeStripe) {
  const std::int64_t a = 7;
  const std::int64_t b = stripe_sibling(a);
  ASSERT_GE(b, 0);
  clean_write(a);
  clean_write(b);
  // Crash both mid-update: data durable, parity stale.
  const auto ga = auditor_.host_write(a);
  auditor_.data_durable(a, ga);
  const auto gb = auditor_.host_write(b);
  auditor_.data_durable(b, gb);
  EXPECT_EQ(auditor_.audit().write_holes, 2u);
  // Resyncing via either member recomputes the stripe's parity from disk
  // content: both blocks heal.
  auditor_.resync_block(a);
  EXPECT_TRUE(auditor_.audit().clean());
}

TEST_F(AuditorModelTest, NvramWipeExposesLostWrites) {
  const auto gen = auditor_.host_write(9);
  auditor_.nvram_put(9, gen);
  auditor_.acknowledge(9, gen);  // acked from the NV cache
  EXPECT_TRUE(auditor_.audit().clean());
  auditor_.wipe_nvram();
  const auto report = auditor_.audit();
  EXPECT_EQ(report.lost_writes, 1u);
}

TEST_F(AuditorModelTest, DestageMakesAckedWriteDurableAgain) {
  const auto gen = auditor_.host_write(9);
  auditor_.nvram_put(9, gen);
  auditor_.acknowledge(9, gen);
  auditor_.data_durable(9, gen);
  auditor_.parity_durable({9, gen, 0}, /*recompute=*/true);
  auditor_.nvram_evict(9);
  EXPECT_TRUE(auditor_.audit().clean());
}

TEST_F(AuditorModelTest, BlocksOnFailedDiskAreSkipped) {
  clean_write(7);
  const auto gen = auditor_.host_write(7);
  auditor_.data_durable(7, gen);  // hole: parity never updated
  const int disk = controller_.layout().map_read(7, 1).front().disk;
  controller_.fail_disk(disk);
  const auto report = auditor_.audit();
  EXPECT_EQ(report.degraded_skipped, 1u);
  EXPECT_EQ(report.write_holes, 0u);
}

TEST_F(AuditorModelTest, MirrorOrganizationHasNoParityHoles) {
  EventQueue eq;
  UncachedController mirror(eq, config(Organization::kMirror));
  ShadowAuditor auditor(mirror);
  const auto gen = auditor.host_write(3);
  auditor.data_durable(3, gen);
  auditor.acknowledge(3, gen);
  EXPECT_TRUE(auditor.audit().clean());
  EXPECT_EQ(auditor.first_inconsistent_block(), -1);
}

}  // namespace
}  // namespace raidsim
