#include "crash/crash_injector.hpp"

#include <gtest/gtest.h>

#include "array/cached_controller.hpp"
#include "array/uncached_controller.hpp"
#include "crash/auditor.hpp"

namespace raidsim {
namespace {

class CrashInjectorTest : public ::testing::Test {
 protected:
  static ArrayController::Config config(std::int64_t blocks_per_disk = 1800) {
    ArrayController::Config cfg;
    cfg.layout.organization = Organization::kRaid5;
    cfg.layout.data_disks = 4;
    cfg.layout.data_blocks_per_disk = blocks_per_disk;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }
};

TEST_F(CrashInjectorTest, MidStripeCrashLeavesDetectableHole) {
  EventQueue eq;
  UncachedController c(eq, config());
  ShadowAuditor auditor(c);
  CrashInjector::Options opt;
  opt.auto_recover = false;
  CrashInjector injector(eq, c, opt);

  for (int i = 0; i < 4; ++i)
    c.submit(ArrayRequest{i * 37, 1, true}, [](SimTime) {});

  // Catch a stripe update half landed and pull the plug.
  bool crashed = false;
  while (!crashed && eq.step()) {
    if (auditor.first_inconsistent_block() >= 0) {
      crashed = true;
      injector.crash_now();
    }
  }
  ASSERT_TRUE(crashed);
  eq.run();

  EXPECT_EQ(injector.crashes(), 1u);
  EXPECT_EQ(c.stats().crashes, 1u);
  EXPECT_GE(auditor.audit().write_holes, 1u);
  // The interrupted updates' disk traffic was dropped by the outage.
  std::uint64_t drops = c.stats().crash_dropped_ops;
  EXPECT_GE(drops, 1u);
}

TEST_F(CrashInjectorTest, ControllerServesAgainAfterRestart) {
  EventQueue eq;
  UncachedController c(eq, config());
  CrashInjector::Options opt;
  opt.auto_recover = false;
  opt.restart_delay_ms = 25.0;
  CrashInjector injector(eq, c, opt);

  bool recovered = false;
  injector.set_on_recovered([&](SimTime) { recovered = true; });
  injector.crash_now();
  EXPECT_TRUE(injector.down());
  EXPECT_TRUE(c.crashed());

  // While down, host requests die unanswered.
  bool answered = false;
  c.submit(ArrayRequest{0, 1, false}, [&](SimTime) { answered = true; });
  eq.run_until(eq.now() + 25.0);
  EXPECT_FALSE(answered);
  EXPECT_TRUE(recovered);
  EXPECT_FALSE(injector.down());

  double done = -1.0;
  c.submit(ArrayRequest{0, 1, false}, [&](SimTime t) { done = t; });
  eq.run();
  EXPECT_GE(done, 0.0);
}

TEST_F(CrashInjectorTest, ManualCrashSupersedesScheduledOne) {
  EventQueue eq;
  UncachedController c(eq, config());
  CrashInjector::Options opt;
  opt.auto_recover = false;
  CrashInjector injector(eq, c, opt);
  injector.crash_at(100.0);
  injector.crash_now();  // fires first; the scheduled crash must not
  eq.run_until(200.0);
  EXPECT_EQ(injector.crashes(), 1u);
}

TEST_F(CrashInjectorTest, StochasticArmingProducesRepeatedCrashes) {
  EventQueue eq;
  UncachedController c(eq, config());
  CrashInjector::Options opt;
  opt.auto_recover = true;  // no journal, no fallback: instant recovery
  opt.crash_mean_ms = 40.0;
  opt.restart_delay_ms = 5.0;
  opt.seed = 7;
  CrashInjector injector(eq, c, opt);
  injector.arm();
  eq.run_until(1000.0);
  EXPECT_GE(injector.crashes(), 2u);
  EXPECT_EQ(c.stats().crashes, injector.crashes());
}

TEST_F(CrashInjectorTest, ArmWithoutMeanThrows) {
  EventQueue eq;
  UncachedController c(eq, config());
  CrashInjector::Options opt;
  opt.crash_mean_ms = 0.0;
  CrashInjector injector(eq, c, opt);
  EXPECT_THROW(injector.arm(), std::logic_error);
}

TEST_F(CrashInjectorTest, VolatileCacheCrashLosesAcknowledgedWrites) {
  auto run = [](bool survives) {
    EventQueue eq;
    CachedController::CacheConfig cache_cfg;
    cache_cfg.cache_bytes = 64 * 4096;
    cache_cfg.destage_period_ms = 10000.0;  // nothing destages before the crash
    CachedController controller(eq, config(), cache_cfg);
    ShadowAuditor auditor(controller);
    CrashInjector::Options opt;
    opt.nvram_survives_crash = survives;
    opt.auto_recover = false;
    CrashInjector injector(eq, controller, opt);

    // Acknowledged cache writes, still dirty (not yet destaged).
    for (int i = 0; i < 8; ++i)
      controller.submit(ArrayRequest{i * 11, 1, true}, [](SimTime) {});
    eq.run_until(100.0);
    injector.crash_now();
    eq.run_until(eq.now() + 100.0);
    controller.shutdown();
    eq.run();
    return auditor.audit();
  };

  const auto wiped = run(false);
  EXPECT_GE(wiped.lost_writes, 8u);  // every acked write evaporated

  const auto preserved = run(true);
  EXPECT_EQ(preserved.lost_writes, 0u);  // battery NVRAM kept them
}

}  // namespace
}  // namespace raidsim
