#include "crash/recovery.hpp"

#include <gtest/gtest.h>

#include "array/intent_journal.hpp"
#include "array/uncached_controller.hpp"
#include "crash/auditor.hpp"

namespace raidsim {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  static ArrayController::Config config(std::int64_t blocks_per_disk = 180) {
    ArrayController::Config cfg;
    cfg.layout.organization = Organization::kRaid5;
    cfg.layout.data_disks = 4;
    cfg.layout.data_blocks_per_disk = blocks_per_disk;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }
};

TEST_F(RecoveryTest, NothingToDoCompletesImmediately) {
  EventQueue eq;
  UncachedController c(eq, config());
  RecoveryProcess recovery(eq, c);  // no journal, no fallback
  double done = -1.0;
  recovery.start([&](SimTime t) { done = t; });
  EXPECT_EQ(done, 0.0);  // completed synchronously at t = 0
  EXPECT_FALSE(recovery.running());
  EXPECT_EQ(recovery.stats().stripes_resynced, 0u);
  EXPECT_FALSE(recovery.stats().used_journal);
  EXPECT_FALSE(recovery.stats().full_resync);
}

TEST_F(RecoveryTest, FullResyncWalksEveryParityGroup) {
  EventQueue eq;
  UncachedController c(eq, config());
  RecoveryProcess::Options opt;
  opt.full_resync_fallback = true;
  RecoveryProcess recovery(eq, c, opt);
  bool done = false;
  recovery.start([&](SimTime) { done = true; });
  EXPECT_TRUE(recovery.running());
  eq.run();
  EXPECT_TRUE(done);
  // RAID5, unit 1, 4 data disks, 180 data blocks per disk: one parity
  // group per row.
  EXPECT_TRUE(recovery.stats().full_resync);
  EXPECT_EQ(recovery.stats().stripes_resynced, 180u);
  EXPECT_GT(recovery.stats().read_blocks, recovery.stats().write_blocks);
  EXPECT_GT(recovery.stats().recovery_ms, 0.0);
  EXPECT_EQ(c.stats().full_resyncs, 1u);
  EXPECT_EQ(c.stats().resync_stripes, 180u);
  EXPECT_EQ(c.stats().resync_read_blocks, recovery.stats().read_blocks);
  EXPECT_EQ(c.stats().resync_write_blocks, recovery.stats().write_blocks);
  EXPECT_NEAR(c.stats().recovery_ms, recovery.stats().recovery_ms, 1e-9);
}

TEST_F(RecoveryTest, JournalReplayResyncsOnlyDirtyStripes) {
  EventQueue eq;
  UncachedController c(eq, config());
  ShadowAuditor auditor(c);
  IntentJournal journal;
  c.attach_journal(&journal);

  // Plant two open intents in distinct stripes, plus a duplicate of the
  // first stripe, exactly as an interrupted destage would leave them.
  const auto plan_a = c.layout().map_write(3, 1).front();
  const auto plan_b = c.layout().map_write(90, 1).front();
  journal.open(plan_a, 0.0);
  journal.open(plan_a, 0.0);
  journal.open(plan_b, 0.0);

  // Make the stripes genuinely inconsistent in the shadow model.
  for (std::int64_t block : {std::int64_t{3}, std::int64_t{90}}) {
    const auto gen = auditor.host_write(block);
    auditor.data_durable(block, gen);  // data landed, parity did not
  }
  EXPECT_EQ(auditor.audit().write_holes, 2u);

  RecoveryProcess recovery(eq, c);
  bool done = false;
  recovery.start([&](SimTime) { done = true; });
  eq.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(recovery.stats().used_journal);
  EXPECT_EQ(recovery.stats().intents_replayed, 3u);
  EXPECT_EQ(recovery.stats().stripes_resynced, 2u);  // deduped by stripe
  EXPECT_EQ(journal.open_intents(), 0u);  // journal retired
  EXPECT_TRUE(auditor.audit().clean());
  EXPECT_EQ(c.stats().journal_replays, 3u);
}

TEST_F(RecoveryTest, WipedJournalFallsBackToFullResync) {
  EventQueue eq;
  UncachedController c(eq, config());
  IntentJournal journal;
  c.attach_journal(&journal);
  journal.open(c.layout().map_write(3, 1).front(), 0.0);
  journal.power_loss(/*nvram_survives=*/false);
  ASSERT_TRUE(journal.wiped());

  RecoveryProcess::Options opt;
  opt.full_resync_fallback = true;
  RecoveryProcess recovery(eq, c, opt);
  recovery.start();
  eq.run();
  EXPECT_TRUE(recovery.stats().full_resync);
  EXPECT_FALSE(recovery.stats().used_journal);
  EXPECT_EQ(recovery.stats().stripes_resynced, 180u);
  EXPECT_FALSE(journal.wiped());  // reset for the new epoch
}

TEST_F(RecoveryTest, ConcurrencyWindowIsRespected) {
  EXPECT_THROW(
      {
        EventQueue eq;
        UncachedController c(eq, config());
        RecoveryProcess::Options opt;
        opt.stripes_per_pass = 0;
        RecoveryProcess recovery(eq, c, opt);
      },
      std::invalid_argument);
}

TEST_F(RecoveryTest, RestartWhileRunningThrows) {
  EventQueue eq;
  UncachedController c(eq, config());
  RecoveryProcess::Options opt;
  opt.full_resync_fallback = true;
  RecoveryProcess recovery(eq, c, opt);
  recovery.start();
  EXPECT_TRUE(recovery.running());
  EXPECT_THROW(recovery.start(), std::logic_error);
  eq.run();
}

}  // namespace
}  // namespace raidsim
