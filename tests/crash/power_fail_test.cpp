#include "disk/disk.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

class PowerFailTest : public ::testing::Test {
 protected:
  PowerFailTest()
      : seek_(SeekModel::calibrate(SeekSpec{})), disk_(eq_, geo_, &seek_, 0) {}

  double block_xfer_ms() const { return 8.0 * geo_.sector_time_ms(); }

  EventQueue eq_;
  DiskGeometry geo_;
  SeekModel seek_;
  Disk disk_;
};

TEST_F(PowerFailTest, InFlightWriteKeepsDurablePrefix) {
  // 12-block write at block 0 from t = 0: pure transfer, the head lays
  // down one block per block_xfer_ms. Cut power mid-transfer.
  double failed_at = -1.0;
  int durable = -1;
  bool completed = false;
  DiskRequest req;
  req.kind = DiskOpKind::kWrite;
  req.start_block = 0;
  req.block_count = 12;
  req.on_complete = [&](SimTime) { completed = true; };
  req.on_power_fail = [&](SimTime t, int d) {
    failed_at = t;
    durable = d;
  };
  disk_.submit(std::move(req));
  eq_.run_until(5.5 * block_xfer_ms());

  const auto report = disk_.power_fail();
  EXPECT_EQ(report.inflight_ops, 1u);
  EXPECT_EQ(report.write_blocks_durable, 5u);  // floor(5.5) blocks landed
  EXPECT_EQ(report.write_blocks_lost, 7u);
  EXPECT_EQ(durable, 5);
  EXPECT_NEAR(failed_at, 5.5 * block_xfer_ms(), 1e-9);

  // The scheduled completion must never fire.
  eq_.run();
  EXPECT_FALSE(completed);
  EXPECT_TRUE(disk_.powered_off());
}

TEST_F(PowerFailTest, QueuedWritesLoseEverything) {
  DiskRequest active;
  active.kind = DiskOpKind::kWrite;
  active.start_block = 0;
  active.block_count = 4;
  disk_.submit(std::move(active));

  int queued_durable = -1;
  DiskRequest queued;
  queued.kind = DiskOpKind::kWrite;
  queued.start_block = 100;
  queued.block_count = 6;
  queued.on_power_fail = [&](SimTime, int d) { queued_durable = d; };
  disk_.submit(std::move(queued));

  eq_.run_until(0.5 * block_xfer_ms());
  const auto report = disk_.power_fail();
  EXPECT_EQ(report.queued_ops, 1u);
  EXPECT_EQ(report.inflight_ops, 1u);
  EXPECT_EQ(queued_durable, 0);
  // Queued write: all 6 lost. Active write, half a block in:
  // floor(0.125 * 4) = 0 durable, so all 4 lost too.
  EXPECT_EQ(report.write_blocks_lost, 6u + 4u);
}

TEST_F(PowerFailTest, ReadsAreNeverDurable) {
  int durable = -1;
  DiskRequest req;
  req.kind = DiskOpKind::kRead;
  req.start_block = 0;
  req.block_count = 8;
  req.on_power_fail = [&](SimTime, int d) { durable = d; };
  disk_.submit(std::move(req));
  eq_.run_until(0.5 * block_xfer_ms());
  const auto report = disk_.power_fail();
  EXPECT_EQ(report.inflight_ops, 1u);
  EXPECT_EQ(report.write_blocks_lost, 0u);
  EXPECT_EQ(report.write_blocks_durable, 0u);
  EXPECT_EQ(durable, 0);
}

TEST_F(PowerFailTest, RmwInReadPhaseHasNoDurableBlocks) {
  int durable = -1;
  DiskRequest req;
  req.kind = DiskOpKind::kReadModifyWrite;
  req.start_block = 0;
  req.block_count = 2;
  req.gate = WriteGate::already_open(eq_.op_arena());
  req.on_power_fail = [&](SimTime, int d) { durable = d; };
  disk_.submit(std::move(req));
  // Halfway through the old-data read: the in-place write has not begun.
  eq_.run_until(1.0 * block_xfer_ms());
  const auto report = disk_.power_fail();
  EXPECT_EQ(report.inflight_ops, 1u);
  EXPECT_EQ(durable, 0);
  EXPECT_EQ(report.write_blocks_durable, 0u);
  EXPECT_EQ(report.write_blocks_lost, 2u);
}

TEST_F(PowerFailTest, SubmissionsRefusedWhilePoweredOff) {
  disk_.power_fail();
  int durable = -1;
  bool completed = false;
  DiskRequest req;
  req.kind = DiskOpKind::kWrite;
  req.start_block = 0;
  req.on_complete = [&](SimTime) { completed = true; };
  req.on_power_fail = [&](SimTime, int d) { durable = d; };
  disk_.submit(std::move(req));
  eq_.run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(durable, 0);
  EXPECT_EQ(disk_.stats().power_fail_drops, 1u);
}

TEST_F(PowerFailTest, PowerOnRestoresNormalService) {
  disk_.power_fail();
  disk_.power_on();
  EXPECT_FALSE(disk_.powered_off());
  double completed = -1.0;
  DiskRequest req;
  req.kind = DiskOpKind::kWrite;
  req.start_block = 0;
  req.on_complete = [&](SimTime t) { completed = t; };
  disk_.submit(std::move(req));
  eq_.run();
  EXPECT_GE(completed, 0.0);
  EXPECT_EQ(disk_.stats().writes, 1u);
}

TEST_F(PowerFailTest, DoublePowerFailIsIdempotent) {
  DiskRequest req;
  req.kind = DiskOpKind::kWrite;
  req.start_block = 0;
  req.block_count = 4;
  disk_.submit(std::move(req));
  eq_.run_until(0.5 * block_xfer_ms());
  const auto first = disk_.power_fail();
  EXPECT_EQ(first.inflight_ops, 1u);
  const auto second = disk_.power_fail();
  EXPECT_EQ(second.inflight_ops, 0u);
  EXPECT_EQ(second.queued_ops, 0u);
}

}  // namespace
}  // namespace raidsim
