#include "array/intent_journal.hpp"

#include <gtest/gtest.h>

#include "array/cached_controller.hpp"
#include "crash/auditor.hpp"
#include "crash/crash_injector.hpp"
#include "util/rng.hpp"

namespace raidsim {
namespace {

StripeUpdate make_update(int data_disk, std::int64_t block, int parity_disk,
                         std::int64_t parity_block) {
  StripeUpdate update;
  PhysicalExtent data;
  data.disk = data_disk;
  data.start_block = block;
  data.block_count = 1;
  update.writes.push_back(data);
  update.parity.disk = parity_disk;
  update.parity.start_block = parity_block;
  update.parity.block_count = 1;
  return update;
}

TEST(IntentJournalTest, OpenCloseLifecycle) {
  IntentJournal journal;
  const auto id = journal.open(make_update(0, 10, 2, 10), 1.0);
  EXPECT_EQ(journal.open_intents(), 1u);
  journal.close(id, 2.0);
  EXPECT_EQ(journal.open_intents(), 0u);
  EXPECT_EQ(journal.stats().opened, 1u);
  EXPECT_EQ(journal.stats().closed, 1u);
  EXPECT_EQ(journal.stats().peak_open, 1u);
}

TEST(IntentJournalTest, CloseOfUnknownIdIsIgnored) {
  IntentJournal journal;
  journal.close(99, 1.0);  // e.g. a stale completion after recovery
  EXPECT_EQ(journal.stats().closed, 0u);
}

TEST(IntentJournalTest, DirtyStripesDedupByParityExtent) {
  IntentJournal journal;
  // Two intents against the same parity extent, one against another.
  journal.open(make_update(0, 10, 2, 10), 0.0);
  journal.open(make_update(1, 10, 2, 10), 0.0);
  journal.open(make_update(0, 20, 2, 20), 0.0);
  EXPECT_EQ(journal.open_intents(), 3u);
  EXPECT_EQ(journal.dirty_stripes(), 2u);
}

TEST(IntentJournalTest, SurvivingPowerLossKeepsIntents) {
  IntentJournal journal;
  journal.open(make_update(0, 10, 2, 10), 0.0);
  journal.power_loss(/*nvram_survives=*/true);
  EXPECT_FALSE(journal.wiped());
  EXPECT_EQ(journal.open_intents(), 1u);
  EXPECT_EQ(journal.stats().wipes, 0u);
}

TEST(IntentJournalTest, VolatileLossWipesJournal) {
  IntentJournal journal;
  journal.open(make_update(0, 10, 2, 10), 0.0);
  journal.power_loss(/*nvram_survives=*/false);
  EXPECT_TRUE(journal.wiped());
  EXPECT_EQ(journal.open_intents(), 0u);
  EXPECT_EQ(journal.stats().wipes, 1u);
  journal.clear();
  EXPECT_FALSE(journal.wiped());
}

// ---------------------------------------------------------------------------
// Acceptance drill: crash a cached RAID5 array in the middle of a stripe
// update and compare three protection levels on the IDENTICAL seeded
// workload (journal bookkeeping costs zero simulated time, so the crash
// interrupts the very same in-flight update in each variant):
//
//   A  no journal, no recovery    -> the write hole persists;
//   B  intent journal replay      -> consistent, tiny targeted resync;
//   C  full-array resync baseline -> consistent, but touches every stripe.
// ---------------------------------------------------------------------------

struct DrillResult {
  ShadowAuditor::Report report;
  ControllerStats stats;
  RecoveryProcess::Stats recovery;
  std::uint64_t crashes = 0;
  std::uint64_t resync_io() const {
    return stats.resync_read_blocks + stats.resync_write_blocks;
  }
};

class CrashDrillTest : public ::testing::Test {
 protected:
  static ArrayController::Config config() {
    ArrayController::Config cfg;
    cfg.layout.organization = Organization::kRaid5;
    cfg.layout.data_disks = 4;
    cfg.layout.data_blocks_per_disk = 240;  // keeps the full resync small
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  static DrillResult run_drill(bool journal, bool recover,
                               bool full_fallback) {
    EventQueue eq;
    CachedController::CacheConfig cache_cfg;
    // Large enough that every write stays cached until the periodic
    // destage sweep: the crash must land mid stripe-update, not inside a
    // cache-overflow victim writeback (whose NVRAM slot is already gone).
    cache_cfg.cache_bytes = 64 * 4096;
    cache_cfg.destage_period_ms = 500.0;
    cache_cfg.intent_journal = journal;
    CachedController controller(eq, config(), cache_cfg);
    ShadowAuditor auditor(controller);

    CrashInjector::Options opt;
    opt.nvram_survives_crash = true;
    opt.auto_recover = recover;
    opt.recovery.full_resync_fallback = full_fallback;
    CrashInjector injector(eq, controller, opt);

    // Seeded write workload, identical across variants.
    Rng rng(0xD155C0);
    const std::int64_t capacity = controller.layout().logical_capacity();
    for (int i = 0; i < 48; ++i) {
      const std::int64_t block = rng.uniform_i64(0, capacity - 1);
      eq.schedule_at(i * 4.0, [&controller, block] {
        controller.submit(ArrayRequest{block, 1, true}, [](SimTime) {});
      });
    }

    // Step event by event; when a stripe update is caught half landed
    // (cover != disk), pull the plug a hair LATER rather than right now:
    // a completion queued at this exact timestamp means the other half
    // already finished physically (its power-fail durable prefix would
    // cover it), so crashing between timestamps lets same-instant events
    // drain first and we disarm if the window was such an artifact.
    // Bounded by simulated time: the periodic destage tick keeps the
    // event queue alive forever.
    bool armed = false;
    while (!controller.crashed() && eq.now() < 60000.0 && eq.step()) {
      const bool window = auditor.first_inconsistent_block() >= 0;
      if (window && !armed) {
        injector.crash_at(eq.now() + 1e-6);
        armed = true;
      } else if (!window && armed) {
        injector.disarm();
        armed = false;
      }
    }
    EXPECT_TRUE(controller.crashed())
        << "workload never opened a crash window";

    // Quiesce: let every surviving destage and the recovery finish.
    eq.run_until(eq.now() + 20000.0);
    controller.shutdown();
    eq.run();

    DrillResult result;
    result.report = auditor.audit();
    result.stats = controller.stats();
    result.recovery = injector.last_recovery();
    result.crashes = injector.crashes();
    return result;
  }
};

TEST_F(CrashDrillTest, UnprotectedCrashLeavesWriteHole) {
  const auto r = run_drill(/*journal=*/false, /*recover=*/false,
                           /*full_fallback=*/false);
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_EQ(r.stats.crashes, 1u);
  EXPECT_GE(r.report.write_holes, 1u);
  EXPECT_EQ(r.resync_io(), 0u);
}

TEST_F(CrashDrillTest, JournalReplayClosesTheHole) {
  const auto r = run_drill(/*journal=*/true, /*recover=*/true,
                           /*full_fallback=*/false);
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_EQ(r.report.write_holes, 0u);
  EXPECT_EQ(r.report.lost_writes, 0u);
  EXPECT_TRUE(r.recovery.used_journal);
  EXPECT_FALSE(r.recovery.full_resync);
  EXPECT_GE(r.recovery.stripes_resynced, 1u);
  EXPECT_GT(r.resync_io(), 0u);
  EXPECT_GT(r.stats.journal_intents, 0u);
  EXPECT_GT(r.stats.journal_replays, 0u);
  EXPECT_GT(r.stats.recovery_ms, 0.0);
}

TEST_F(CrashDrillTest, FullResyncAlsoClosesTheHoleButTouchesEverything) {
  const auto full = run_drill(/*journal=*/false, /*recover=*/true,
                              /*full_fallback=*/true);
  EXPECT_EQ(full.report.write_holes, 0u);
  EXPECT_TRUE(full.recovery.full_resync);
  EXPECT_EQ(full.stats.full_resyncs, 1u);
  // Every parity group in the array was walked.
  EXPECT_EQ(full.recovery.stripes_resynced,
            static_cast<std::uint64_t>(config().layout.data_blocks_per_disk));

  // The acceptance bar: the journaled resync does strictly less I/O.
  const auto journaled = run_drill(/*journal=*/true, /*recover=*/true,
                                   /*full_fallback=*/false);
  EXPECT_EQ(journaled.report.write_holes, 0u);
  EXPECT_LT(journaled.resync_io(), full.resync_io());
  EXPECT_LT(journaled.recovery.stripes_resynced,
            full.recovery.stripes_resynced);
}

TEST_F(CrashDrillTest, ArrayKeepsServingAfterRestart) {
  EventQueue eq;
  CachedController::CacheConfig cache_cfg;
  cache_cfg.cache_bytes = 16 * 4096;
  cache_cfg.destage_period_ms = 500.0;
  cache_cfg.intent_journal = true;
  CachedController controller(eq, config(), cache_cfg);
  ShadowAuditor auditor(controller);
  CrashInjector injector(eq, controller, CrashInjector::Options());

  controller.submit(ArrayRequest{5, 1, true}, [](SimTime) {});
  eq.run_until(1.0);
  injector.crash_now();
  EXPECT_TRUE(controller.crashed());

  bool recovered = false;
  injector.set_on_recovered([&](SimTime) { recovered = true; });
  eq.run_until(eq.now() + 200.0);
  EXPECT_TRUE(recovered);
  EXPECT_FALSE(controller.crashed());

  double done = -1.0;
  controller.submit(ArrayRequest{7, 1, true}, [&](SimTime t) { done = t; });
  eq.run_until(eq.now() + 5000.0);
  EXPECT_GE(done, 0.0);
  controller.shutdown();
  eq.run();
  EXPECT_TRUE(auditor.audit().clean());
}

}  // namespace
}  // namespace raidsim
