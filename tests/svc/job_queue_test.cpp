#include "svc/job_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace raidsim::svc {
namespace {

TEST(BoundedQueue, PushRejectsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // never blocks
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, CloseRejectsPushesAndDrainsBacklog) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);  // backlog still drains
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // then nullopt, no hang
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(4);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i)
    consumers.emplace_back([&q, &woke] {
      while (q.pop().has_value()) {
      }
      woke.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(BoundedQueue, TryPopIsNonBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  q.try_push(9);
  EXPECT_EQ(q.try_pop().value(), 9);
}

TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 2000;
  std::atomic<int> accepted{0}, consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        if (q.try_push(i)) accepted.fetch_add(1);
    });
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c)
    consumers.emplace_back([&] {
      while (q.pop().has_value()) consumed.fetch_add(1);
    });
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  // Everything accepted is consumed exactly once; the bound held.
  EXPECT_EQ(consumed.load(), accepted.load());
  EXPECT_GT(accepted.load(), 0);
}

}  // namespace
}  // namespace raidsim::svc
