// Flight-recorder coverage: a job that dies abnormally leaves a
// loadable Chrome-trace artifact behind (deadline through the
// supervisor; direct cancellation at the sweep level), a healthy job
// leaves nothing, and supervisor progress streaming delivers monotone
// frames before the terminal completion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/tracer.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/cancellation.hpp"
#include "svc/supervisor.hpp"

namespace raidsim::svc {
namespace {

JobRequest big_job(const std::string& id) {
  JobRequest request;
  request.id = id;
  request.trace = "trace2";
  request.workload.scale = 1.0;
  request.no_cache = true;
  return request;
}

JobRequest tiny_job(const std::string& id) {
  JobRequest request;
  request.id = id;
  request.trace = "trace2";
  request.workload.scale = 0.05;
  request.no_cache = true;
  return request;
}

JobResult submit_and_wait(Supervisor& sup, JobRequest request,
                          Supervisor::Progress progress = nullptr) {
  std::promise<JobResult> promise;
  auto future = promise.get_future();
  sup.submit(std::move(request),
             [&promise](const JobResult& r) { promise.set_value(r); },
             std::move(progress));
  return future.get();
}

TEST(FlightRecorder, DeadlineKilledJobDumpsArtifact) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const std::string dir = ::testing::TempDir() + "flight_deadline";
  std::remove(dir.c_str());
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

  Supervisor sup({.workers = 1,
                  .queue_capacity = 2,
                  .watchdog_period_ms = 5.0,
                  .flight_dir = dir});
  JobRequest request = big_job("doomed");
  request.deadline_ms = 25.0;
  const JobResult result = submit_and_wait(sup, std::move(request));

  ASSERT_EQ(result.status, JobStatus::kDeadline) << result.error;
  ASSERT_FALSE(result.flight_out.empty())
      << "abnormal termination must surface the flight artifact";
  std::ifstream in(result.flight_out);
  ASSERT_TRUE(in.good()) << result.flight_out;
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"traceEvents\""), std::string::npos)
      << "artifact must be a Chrome trace";
}

TEST(FlightRecorder, ConcurrentIdenticalJobsGetDistinctArtifacts) {
  // Two concurrent no_cache requests with the same fingerprint must not
  // overwrite each other's artifact; the per-job sequence number keys
  // them apart.
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const std::string dir = ::testing::TempDir() + "flight_dup";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

  Supervisor sup({.workers = 2,
                  .queue_capacity = 4,
                  .watchdog_period_ms = 5.0,
                  .flight_dir = dir});
  JobRequest first = big_job("dup-a");
  first.deadline_ms = 25.0;
  JobRequest second = big_job("dup-b");
  second.deadline_ms = 25.0;
  std::promise<JobResult> pa, pb;
  auto fa = pa.get_future();
  auto fb = pb.get_future();
  sup.submit(std::move(first),
             [&pa](const JobResult& r) { pa.set_value(r); });
  sup.submit(std::move(second),
             [&pb](const JobResult& r) { pb.set_value(r); });
  const JobResult ra = fa.get();
  const JobResult rb = fb.get();

  ASSERT_EQ(ra.status, JobStatus::kDeadline) << ra.error;
  ASSERT_EQ(rb.status, JobStatus::kDeadline) << rb.error;
  EXPECT_EQ(ra.fingerprint, rb.fingerprint);  // identical requests
  ASSERT_FALSE(ra.flight_out.empty());
  ASSERT_FALSE(rb.flight_out.empty());
  EXPECT_NE(ra.flight_out, rb.flight_out);
  EXPECT_TRUE(std::ifstream(ra.flight_out).good()) << ra.flight_out;
  EXPECT_TRUE(std::ifstream(rb.flight_out).good()) << rb.flight_out;
}

TEST(FlightRecorder, HealthyJobLeavesNoArtifact) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const std::string dir = ::testing::TempDir() + "flight_healthy";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

  Supervisor sup({.workers = 1, .queue_capacity = 2, .flight_dir = dir});
  const JobResult result = submit_and_wait(sup, tiny_job("fine"));
  EXPECT_EQ(result.status, JobStatus::kOk) << result.error;
  EXPECT_TRUE(result.flight_out.empty());
}

TEST(FlightRecorder, SweepLevelCancelDumpsForBothEngines) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  for (int shards : {0, 2}) {
    const std::string prefix = ::testing::TempDir() + "flight_sweep_" +
                               std::to_string(shards);
    CancelToken token;
    SweepJob job;
    job.trace = "trace2";
    job.workload.scale = 1.0;
    job.config.shards = shards;
    job.cancel = &token;
    job.flight_out = prefix;

    std::thread killer([&token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      token.cancel(CancelReason::kClient);
    });
    EXPECT_THROW(run_sweep_job(job), CancelledError) << "shards=" << shards;
    killer.join();

    const std::string path = shards == 0
                                 ? prefix + ".trace.json"
                                 : prefix + "_shard0.trace.json";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing flight dump " << path;
  }
}

TEST(SupervisorProgress, FramesStreamBeforeCompletionAndAreMonotone) {
  Supervisor sup({.workers = 1,
                  .queue_capacity = 2,
                  .progress_interval_ms = 0.0});  // every engine frame

  std::mutex mu;
  std::vector<JobProgress> frames;
  std::atomic<bool> completed{false};
  std::atomic<bool> frame_after_completion{false};
  const JobResult result = submit_and_wait(
      sup, tiny_job("watched"), [&](const JobProgress& p) {
        if (completed.load()) frame_after_completion.store(true);
        std::lock_guard<std::mutex> lock(mu);
        frames.push_back(p);
      });
  completed.store(true);

  ASSERT_EQ(result.status, JobStatus::kOk) << result.error;
  EXPECT_FALSE(frame_after_completion.load())
      << "all frames must precede the completion callback";
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(frames.empty());
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GE(frames[i].events, frames[i - 1].events);
    EXPECT_GE(frames[i].sim_ms, frames[i - 1].sim_ms);
  }
  const JobProgress& last = frames.back();
  EXPECT_TRUE(last.final_frame);
  EXPECT_EQ(last.id, "watched");
  EXPECT_GT(last.total, 0u);
  EXPECT_EQ(last.done, last.total);
  EXPECT_DOUBLE_EQ(last.percent, 100.0);
  EXPECT_EQ(result.fingerprint, last.fingerprint);
}

TEST(SupervisorProgress, ThrottleStillDeliversFinalFrame) {
  // An interval far longer than the run: every intermediate frame is
  // throttled away, but the final frame is guaranteed.
  Supervisor sup({.workers = 1,
                  .queue_capacity = 2,
                  .progress_interval_ms = 60000.0});
  std::mutex mu;
  std::vector<JobProgress> frames;
  const JobResult result = submit_and_wait(
      sup, tiny_job("throttled"), [&](const JobProgress& p) {
        std::lock_guard<std::mutex> lock(mu);
        frames.push_back(p);
      });
  ASSERT_EQ(result.status, JobStatus::kOk) << result.error;
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(frames.empty());
  EXPECT_TRUE(frames.back().final_frame);
}

}  // namespace
}  // namespace raidsim::svc
