// End-to-end protocol tests: a real Server on a real AF_UNIX socket,
// driven by the blocking Client.

#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "svc/client.hpp"
#include "svc/job_codec.hpp"
#include "svc/server.hpp"

namespace raidsim::svc {
namespace {

class ServiceSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = "/tmp/raidsim_svc_test." + std::to_string(::getpid()) +
                   "." + ::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name() +
                   ".sock";
    Server::Options opts;
    opts.socket_path = socket_path_;
    opts.supervisor.workers = 2;
    opts.supervisor.queue_capacity = 4;
    opts.supervisor.drain_budget_ms = 30000.0;
    opts.log_final_stats = false;
    server_ = std::make_unique<Server>(opts);
    server_thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    server_->stop();
    server_thread_.join();
    server_.reset();
  }

  std::string socket_path_;
  std::unique_ptr<Server> server_;
  std::thread server_thread_;
};

std::string status_of(const JsonValue& v) {
  const JsonValue* s = v.find("status");
  return (s != nullptr && s->is_string()) ? s->as_string() : "";
}

TEST_F(ServiceSocketTest, PingPongs) {
  Client client(socket_path_);
  const JsonValue pong = client.request(R"({"op":"ping","id":"p1"})");
  EXPECT_EQ(status_of(pong), "ok");
  EXPECT_EQ(pong.find("id")->as_string(), "p1");
}

TEST_F(ServiceSocketTest, RunReturnsMetrics) {
  Client client(socket_path_);
  JobRequest job;
  job.workload.scale = 0.02;
  job.workload.seed = 3;
  job.id = "r1";
  const JsonValue response = client.request(encode_job_request(job));
  EXPECT_EQ(status_of(response), "ok");
  EXPECT_EQ(response.find("id")->as_string(), "r1");
  const JsonValue* metrics = response.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* all = metrics->find("response");
  ASSERT_NE(all, nullptr);
  const JsonValue* mean = all->find("all") ? all->find("all")->find("mean_ms")
                                           : nullptr;
  ASSERT_NE(mean, nullptr);
  EXPECT_GT(mean->as_number(), 0.0);
}

TEST_F(ServiceSocketTest, StatsReflectWork) {
  Client client(socket_path_);
  JobRequest job;
  job.workload.scale = 0.02;
  job.workload.seed = 4;
  ASSERT_EQ(status_of(client.request(encode_job_request(job))), "ok");
  const JsonValue stats = client.request(R"({"op":"stats"})");
  ASSERT_EQ(status_of(stats), "ok");
  const JsonValue* s = stats.find("stats");
  ASSERT_NE(s, nullptr);
  EXPECT_GE(s->find("submitted")->as_number(), 1.0);
  EXPECT_GE(s->find("completed_ok")->as_number(), 1.0);
}

TEST_F(ServiceSocketTest, MalformedLinesGetTypedInvalid) {
  Client client(socket_path_);
  EXPECT_EQ(status_of(client.request("not json at all")), "invalid");
  EXPECT_EQ(status_of(client.request(R"({"op":"run","config":{"n":0}})")),
            "invalid");
  EXPECT_EQ(status_of(client.request(R"({"op":"nonsense"})")), "invalid");
  // Connection survives hostile lines.
  EXPECT_EQ(status_of(client.request(R"({"op":"ping"})")), "ok");
}

TEST_F(ServiceSocketTest, SplitAndPipelinedWritesParseCorrectly) {
  // The server must frame on newlines, not on read() boundaries.
  Client client(socket_path_);
  const std::string a = R"({"op":"ping","id":"a"})" "\n";
  const std::string b = R"({"op":"ping","id":"b"})" "\n";
  // Two requests in one write: two responses, in order.
  const JsonValue first = client.request(a + b);
  const JsonValue second = json_parse(client.request_raw(""));
  EXPECT_EQ(first.find("id")->as_string(), "a");
  EXPECT_EQ(second.find("id")->as_string(), "b");
}

TEST_F(ServiceSocketTest, CacheHitOverProtocolIsByteIdentical) {
  Client client(socket_path_);
  JobRequest job;
  job.workload.scale = 0.02;
  job.workload.seed = 5;
  job.no_cache = true;
  const JsonValue fresh = client.request(encode_job_request(job));
  job.no_cache = false;
  const JsonValue hit = client.request(encode_job_request(job));
  ASSERT_EQ(status_of(fresh), "ok");
  ASSERT_EQ(status_of(hit), "ok");
  EXPECT_TRUE(hit.find("cached")->as_bool());
  EXPECT_EQ(fresh.find("metrics")->dump(), hit.find("metrics")->dump());
}

TEST_F(ServiceSocketTest, SubscribedConnectionSeesFramesBeforeResponse) {
  // The final progress frame must reach the wire before the terminal
  // response even though frames now travel through the subscriber's
  // buffered drain thread while responses come from a worker thread.
  Client sub(socket_path_);
  ASSERT_EQ(status_of(sub.request(R"({"op":"subscribe","id":"w"})")), "ok");
  JobRequest job;
  job.workload.scale = 0.05;
  job.workload.seed = 11;
  job.no_cache = true;
  job.id = "probe";
  JsonValue msg = sub.request(encode_job_request(job));
  int frames = 0;
  double last_events = -1.0;
  bool last_was_final = false;
  while (msg.find("type") != nullptr &&
         msg.find("type")->as_string() == "progress") {
    const JsonValue* idv = msg.find("id");
    if (idv != nullptr && idv->as_string() == "probe") {
      ++frames;
      const double events = msg.find("events")->as_number();
      EXPECT_GE(events, last_events);  // frames stay ordered end-to-end
      last_events = events;
      last_was_final = msg.find("final")->as_bool();
    }
    msg = json_parse(sub.request_raw(""));
  }
  EXPECT_EQ(status_of(msg), "ok");
  EXPECT_EQ(msg.find("id")->as_string(), "probe");
  EXPECT_GE(frames, 1);
  EXPECT_TRUE(last_was_final)
      << "final frame must hit the wire before the response";
}

TEST_F(ServiceSocketTest, NonReadingSubscriberDoesNotBlockJobs) {
  // A subscriber that never reads may only lose frames; jobs on other
  // connections must keep completing, and TearDown's shutdown must not
  // hang on the subscriber's queue.
  Client sub(socket_path_);
  ASSERT_EQ(status_of(sub.request(R"({"op":"subscribe"})")), "ok");
  // From here on the subscriber never reads again.
  Client worker(socket_path_);
  for (int i = 0; i < 3; ++i) {
    JobRequest job;
    job.workload.scale = 0.02;
    job.workload.seed = 20 + i;
    job.no_cache = true;
    job.id = "j" + std::to_string(i);
    EXPECT_EQ(status_of(worker.request(encode_job_request(job))), "ok");
  }
}

TEST_F(ServiceSocketTest, DrainOpShutsDownGracefully) {
  Client client(socket_path_);
  const JsonValue ack = client.request(R"({"op":"drain","id":"d"})");
  EXPECT_EQ(status_of(ack), "ok");
  server_thread_.join();  // run() returns after the drain completes
  server_thread_ = std::thread([] {});  // keep TearDown joinable
  EXPECT_TRUE(server_->supervisor().draining());
  // Every submitted job is accounted for by a typed terminal/rejection.
  const ServiceStats& s = server_->supervisor().stats();
  EXPECT_EQ(s.submitted.load(),
            s.terminal() + s.rejected_overload.load() +
                s.rejected_draining.load() + s.rejected_invalid.load());
}

}  // namespace
}  // namespace raidsim::svc
