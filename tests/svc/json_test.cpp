#include "svc/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace raidsim::svc {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_EQ(json_parse("true").as_bool(), true);
  EXPECT_EQ(json_parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(json_parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(json_parse("-17").as_number(), -17.0);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedDocument) {
  const JsonValue v = json_parse(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": true}, "e": null})");
  ASSERT_TRUE(v.is_object());
  const JsonValue::Array& a = v.find("a")->as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2].find("b")->as_string(), "x");
  EXPECT_TRUE(v.find("c")->find("d")->as_bool());
  EXPECT_TRUE(v.find("e")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, EscapesRoundTrip) {
  const JsonValue v = json_parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
  // dump() re-escapes; reparsing yields the same string.
  EXPECT_EQ(json_parse(v.dump()).as_string(), v.as_string());
}

TEST(Json, UnicodeEscapeEncodesUtf8) {
  EXPECT_EQ(json_parse(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_EQ(json_parse(R"("€")").as_string(), "\xe2\x82\xac");
}

TEST(Json, TrailingDataIsAnError) {
  EXPECT_THROW(json_parse("{} extra"), JsonError);
  EXPECT_THROW(json_parse("1 2"), JsonError);
}

TEST(Json, TruncatedInputIsAnError) {
  EXPECT_THROW(json_parse(""), JsonError);
  EXPECT_THROW(json_parse("{\"a\":"), JsonError);
  EXPECT_THROW(json_parse("[1, 2"), JsonError);
  EXPECT_THROW(json_parse("\"unterminated"), JsonError);
  EXPECT_THROW(json_parse("tru"), JsonError);
}

TEST(Json, MalformedEscapesAreErrors) {
  EXPECT_THROW(json_parse(R"("\q")"), JsonError);
  EXPECT_THROW(json_parse(R"("\u12g4")"), JsonError);
  EXPECT_THROW(json_parse(R"("\u12")"), JsonError);
  EXPECT_THROW(json_parse("\"raw\ncontrol\""), JsonError);
}

TEST(Json, DepthBombIsRejectedNotStackOverflow) {
  std::string bomb;
  for (int i = 0; i < 2000; ++i) bomb += '[';
  EXPECT_THROW(json_parse(bomb), JsonError);
}

TEST(Json, ErrorCarriesByteOffset) {
  try {
    json_parse("{\"key\": !}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.offset(), 8u);
    EXPECT_NE(std::string(e.what()).find("byte 8"), std::string::npos);
  }
}

TEST(Json, NumberOverflowIsAnError) {
  EXPECT_THROW(json_parse("1e999"), JsonError);
}

TEST(Json, DumpStableKeyOrder) {
  const JsonValue v = json_parse(R"({"zeta": 1, "alpha": 2})");
  EXPECT_EQ(v.dump(), R"({"alpha":2,"zeta":1})");
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const JsonValue v = json_parse("42");
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(v.as_bool(), std::runtime_error);
}

}  // namespace
}  // namespace raidsim::svc
