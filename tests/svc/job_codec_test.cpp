#include "svc/job_codec.hpp"

#include <gtest/gtest.h>

#include "core/job_key.hpp"

namespace raidsim::svc {
namespace {

TEST(JobCodec, DecodeDefaults) {
  const JobRequest job = decode_job_request(json_parse(R"({"op":"run"})"));
  EXPECT_EQ(job.trace, "trace2");
  EXPECT_EQ(job.workload.seed, 0u);
  EXPECT_EQ(job.deadline_ms, 0.0);
  EXPECT_EQ(job.max_retries, 0);
  EXPECT_FALSE(job.no_cache);
  EXPECT_EQ(job.config.organization, Organization::kRaid5);
}

TEST(JobCodec, DecodeFullRequest) {
  const JobRequest job = decode_job_request(json_parse(R"({
    "op": "run", "id": "j1", "trace": "trace1",
    "scale": 0.25, "speed": 2.0, "seed": 7,
    "deadline_ms": 1500, "max_retries": 2, "no_cache": true,
    "config": {
      "org": "parstrip", "n": 20, "su": 4, "sync": "rfpr",
      "parity_placement": "end", "sched": "sstf",
      "cached": true, "cache_mb": 32, "shards": 2,
      "tail": {"enabled": true, "read_deadline_ms": 80}
    }})"));
  EXPECT_EQ(job.id, "j1");
  EXPECT_EQ(job.trace, "trace1");
  EXPECT_DOUBLE_EQ(job.workload.scale, 0.25);
  EXPECT_DOUBLE_EQ(job.workload.speed, 2.0);
  EXPECT_EQ(job.workload.seed, 7u);
  EXPECT_DOUBLE_EQ(job.deadline_ms, 1500.0);
  EXPECT_EQ(job.max_retries, 2);
  EXPECT_TRUE(job.no_cache);
  EXPECT_EQ(job.config.organization, Organization::kParityStriping);
  EXPECT_EQ(job.config.array_data_disks, 20);
  EXPECT_EQ(job.config.striping_unit_blocks, 4);
  EXPECT_EQ(job.config.sync, SyncPolicy::kReadFirstPriority);
  EXPECT_EQ(job.config.parity_placement, ParityPlacement::kEndCylinders);
  EXPECT_EQ(job.config.disk_scheduling, DiskScheduling::kSstf);
  EXPECT_TRUE(job.config.cached);
  EXPECT_EQ(job.config.cache_bytes, 32ll << 20);
  EXPECT_EQ(job.config.shards, 2);
  EXPECT_TRUE(job.config.tail.enabled);
  EXPECT_DOUBLE_EQ(job.config.tail.read_deadline_ms, 80.0);
}

TEST(JobCodec, EncodeDecodeRoundTripPreservesIdentity) {
  JobRequest job;
  job.trace = "trace1";
  job.workload.scale = 0.125;
  job.workload.speed = 1.5;
  job.workload.seed = 99;
  job.config.organization = Organization::kMirror;
  job.config.array_data_disks = 16;
  job.config.sync = SyncPolicy::kSimultaneousIssue;
  job.config.cached = true;
  job.config.shards = 3;
  job.config.tail.enabled = true;

  const JobRequest back =
      decode_job_request(json_parse(encode_job_request(job)));
  // The canonical job key covers every result-determining field, so key
  // equality IS identity for the service.
  EXPECT_EQ(job_canonical_key(job.config, job.trace, job.workload),
            job_canonical_key(back.config, back.trace, back.workload));
}

TEST(JobCodec, UnknownKeysRejectedByName) {
  try {
    decode_job_request(json_parse(R"({"op":"run","turbo":1})"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("turbo"), std::string::npos);
  }
  EXPECT_THROW(
      decode_job_request(json_parse(R"({"op":"run","config":{"frob":1}})")),
      std::invalid_argument);
  EXPECT_THROW(decode_job_request(json_parse(
                   R"({"op":"run","config":{"tail":{"warp":1}}})")),
               std::invalid_argument);
}

TEST(JobCodec, BadValuesRejected) {
  const char* bad[] = {
      R"({"op":"fetch"})",
      R"({"op":"run","trace":"trace3"})",
      R"({"op":"run","scale":0})",
      R"({"op":"run","scale":2})",
      R"({"op":"run","speed":-1})",
      R"({"op":"run","seed":-1})",
      R"({"op":"run","seed":1.5})",
      R"({"op":"run","deadline_ms":-5})",
      R"({"op":"run","max_retries":-1})",
      R"({"op":"run","config":{"org":"raid9"}})",
      R"({"op":"run","config":{"n":"ten"}})",
      R"({"op":"run","config":{"n":3.5}})",
      R"({"op":"run","config":{"cache_mb":-1}})",
      R"({"op":"run","config":{"sync":"yolo"}})",
  };
  for (const char* line : bad) {
    EXPECT_THROW(decode_job_request(json_parse(line)), std::invalid_argument)
        << line;
  }
}

TEST(JobCodec, DecodedConfigIsValidated) {
  // n=0 parses fine but SimulationConfig::validate() must reject it.
  EXPECT_THROW(
      decode_job_request(json_parse(R"({"op":"run","config":{"n":0}})")),
      std::invalid_argument);
  EXPECT_THROW(decode_job_request(
                   json_parse(R"({"op":"run","config":{"n":100000000}})")),
               std::invalid_argument);
}

TEST(JobCodec, ResponseEmbedsMetricsVerbatim) {
  JobResult result;
  result.status = JobStatus::kOk;
  result.metrics_json = R"({"mean_response_ms":12.5})";
  result.attempts = 1;
  const std::string line = encode_job_response(result, "abc");
  const JsonValue v = json_parse(line);
  EXPECT_EQ(v.find("id")->as_string(), "abc");
  EXPECT_EQ(v.find("status")->as_string(), "ok");
  EXPECT_DOUBLE_EQ(v.find("metrics")->find("mean_response_ms")->as_number(),
                   12.5);
  // Verbatim embedding: the metrics bytes appear unchanged in the line.
  EXPECT_NE(line.find(result.metrics_json), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(JobCodec, ErrorResponseIsTyped) {
  const JsonValue v = json_parse(
      encode_error_response("x", JobStatus::kOverloaded, "queue full"));
  EXPECT_EQ(v.find("status")->as_string(), "overloaded");
  EXPECT_EQ(v.find("error")->as_string(), "queue full");
}

}  // namespace
}  // namespace raidsim::svc
