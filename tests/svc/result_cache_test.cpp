#include "svc/result_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace raidsim::svc {
namespace {

TEST(ResultCache, HitReturnsStoredBytes) {
  ResultCache cache(4);
  std::string out;
  EXPECT_FALSE(cache.lookup("k", &out));
  cache.insert("k", "{\"x\":1}");
  ASSERT_TRUE(cache.lookup("k", &out));
  EXPECT_EQ(out, "{\"x\":1}");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.insert("a", "1");
  cache.insert("b", "2");
  std::string out;
  ASSERT_TRUE(cache.lookup("a", &out));  // a is now most recent
  cache.insert("c", "3");                // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup("b", &out));
  EXPECT_TRUE(cache.lookup("a", &out));
  EXPECT_TRUE(cache.lookup("c", &out));
}

TEST(ResultCache, ReinsertRefreshesValueAndRecency) {
  ResultCache cache(2);
  cache.insert("a", "old");
  cache.insert("b", "2");
  cache.insert("a", "new");  // refresh, not duplicate
  EXPECT_EQ(cache.size(), 2u);
  cache.insert("c", "3");  // evicts b (a was refreshed)
  std::string out;
  ASSERT_TRUE(cache.lookup("a", &out));
  EXPECT_EQ(out, "new");
  EXPECT_FALSE(cache.lookup("b", &out));
}

TEST(ResultCache, ZeroCapacityNeverStores) {
  ResultCache cache(0);
  cache.insert("a", "1");
  std::string out;
  EXPECT_FALSE(cache.lookup("a", &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, FullKeyIsIdentityNotItsHash) {
  // Two long keys sharing a prefix must never alias.
  ResultCache cache(8);
  const std::string k1(500, 'x'), k2 = std::string(499, 'x') + "y";
  cache.insert(k1, "one");
  cache.insert(k2, "two");
  std::string out;
  ASSERT_TRUE(cache.lookup(k1, &out));
  EXPECT_EQ(out, "one");
  ASSERT_TRUE(cache.lookup(k2, &out));
  EXPECT_EQ(out, "two");
}

TEST(ResultCache, ConcurrentMixedAccessIsSafe) {
  ResultCache cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 32);
        std::string out;
        if (!cache.lookup(key, &out)) cache.insert(key, key + "-value");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.size(), 16u);
  EXPECT_EQ(cache.hits() + cache.misses(), 2000u);
}

}  // namespace
}  // namespace raidsim::svc
