#include "svc/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <vector>

namespace raidsim::svc {
namespace {

JobRequest tiny_job(std::uint64_t seed, double scale = 0.02) {
  JobRequest job;
  job.trace = "trace2";
  job.workload.scale = scale;
  job.workload.seed = seed;
  return job;
}

JobResult submit_and_wait(Supervisor& sup, JobRequest job) {
  std::promise<JobResult> promise;
  std::future<JobResult> future = promise.get_future();
  sup.submit(std::move(job),
             [&promise](const JobResult& r) { promise.set_value(r); });
  return future.get();
}

TEST(Supervisor, RunsAJobToOk) {
  Supervisor sup({.workers = 1, .queue_capacity = 2});
  const JobResult r = submit_and_wait(sup, tiny_job(1));
  EXPECT_EQ(r.status, JobStatus::kOk);
  EXPECT_FALSE(r.metrics_json.empty());
  EXPECT_FALSE(r.cached);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_NE(r.fingerprint, 0u);
}

TEST(Supervisor, InvalidConfigIsTypedAndSynchronous) {
  Supervisor sup({.workers = 1, .queue_capacity = 2});
  JobRequest bad = tiny_job(1);
  bad.config.array_data_disks = 0;
  const JobResult r = submit_and_wait(sup, std::move(bad));
  EXPECT_EQ(r.status, JobStatus::kInvalid);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(sup.stats().rejected_invalid.load(), 1u);
}

TEST(Supervisor, OverloadShedsWithTypedRejection) {
  // 1 worker + 1 queue slot; a burst of slower jobs must shed the rest
  // synchronously as kOverloaded -- never block or drop.
  Supervisor sup({.workers = 1, .queue_capacity = 1});
  constexpr int kJobs = 8;
  std::vector<std::future<JobResult>> futures;
  std::vector<std::promise<JobResult>> promises(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    futures.push_back(promises[i].get_future());
    JobRequest job = tiny_job(100 + i, 0.05);
    job.no_cache = true;
    sup.submit(std::move(job), [&promises, i](const JobResult& r) {
      promises[i].set_value(r);
    });
  }
  int ok = 0, overloaded = 0;
  for (auto& f : futures) {
    const JobResult r = f.get();
    if (r.status == JobStatus::kOk) ++ok;
    else if (r.status == JobStatus::kOverloaded) ++overloaded;
    else ADD_FAILURE() << "unexpected status " << to_string(r.status);
  }
  EXPECT_EQ(ok + overloaded, kJobs);
  EXPECT_GE(overloaded, kJobs - 2 - 1);  // at most worker+queue+1 admitted
  EXPECT_GT(overloaded, 0);
  EXPECT_EQ(sup.stats().rejected_overload.load(),
            static_cast<std::uint64_t>(overloaded));
}

TEST(Supervisor, CacheHitIsByteIdenticalToFreshRun) {
  Supervisor sup({.workers = 1, .queue_capacity = 2});
  JobRequest fresh = tiny_job(7);
  fresh.no_cache = true;  // bypass lookup; still stores
  const JobResult first = submit_and_wait(sup, fresh);
  ASSERT_EQ(first.status, JobStatus::kOk);

  const JobResult hit = submit_and_wait(sup, tiny_job(7));
  ASSERT_EQ(hit.status, JobStatus::kOk);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.metrics_json, first.metrics_json);  // byte identity
  EXPECT_EQ(sup.cache().hits(), 1u);

  // A different seed is a different key: no false sharing.
  const JobResult other = submit_and_wait(sup, tiny_job(8));
  ASSERT_EQ(other.status, JobStatus::kOk);
  EXPECT_FALSE(other.cached);
  EXPECT_NE(other.fingerprint, hit.fingerprint);
}

TEST(Supervisor, DeadlineCancelsMidRun) {
  Supervisor sup({.workers = 1, .queue_capacity = 2,
                  .watchdog_period_ms = 5.0});
  JobRequest job = tiny_job(9, 1.0);  // full trace2: way over deadline
  job.deadline_ms = 30.0;
  job.no_cache = true;
  const auto t0 = std::chrono::steady_clock::now();
  const JobResult r = submit_and_wait(sup, std::move(job));
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_EQ(r.status, JobStatus::kDeadline);
  EXPECT_LT(ms, 2000.0);  // cancelled promptly, not at completion
  EXPECT_EQ(sup.stats().deadline_expired.load(), 1u);
}

TEST(Supervisor, QueuedJobPastDeadlineNeverRuns) {
  Supervisor sup({.workers = 1, .queue_capacity = 2});
  // Occupy the only worker, then queue a job whose deadline expires
  // while it waits: it must be skipped at pickup with attempts == 0.
  std::promise<JobResult> slow_promise;
  JobRequest slow = tiny_job(10, 0.1);
  slow.no_cache = true;
  sup.submit(std::move(slow), [&slow_promise](const JobResult& r) {
    slow_promise.set_value(r);
  });
  JobRequest queued = tiny_job(11);
  queued.deadline_ms = 1.0;
  queued.no_cache = true;
  const JobResult r = submit_and_wait(sup, std::move(queued));
  EXPECT_EQ(r.status, JobStatus::kDeadline);
  EXPECT_EQ(r.attempts, 0);
  slow_promise.get_future().wait();
}

TEST(Supervisor, TransientFailuresRetryWithBackoff) {
  Supervisor sup({.workers = 1, .queue_capacity = 2,
                  .backoff_base_ms = 1.0});
  JobRequest job = tiny_job(12);
  job.fail_first = 2;
  job.max_retries = 3;
  job.no_cache = true;
  const JobResult r = submit_and_wait(sup, std::move(job));
  EXPECT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(sup.stats().retries.load(), 2u);
}

TEST(Supervisor, ExhaustedRetriesReportFailed) {
  Supervisor sup({.workers = 1, .queue_capacity = 2,
                  .backoff_base_ms = 1.0});
  JobRequest job = tiny_job(13);
  job.fail_first = 10;
  job.max_retries = 2;
  job.no_cache = true;
  const JobResult r = submit_and_wait(sup, std::move(job));
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 3);  // 1 + 2 retries
  EXPECT_NE(r.error.find("transient"), std::string::npos);
}

TEST(Supervisor, RetryCapBoundsClientRequest) {
  Supervisor sup({.workers = 1, .queue_capacity = 2, .retry_cap = 1,
                  .backoff_base_ms = 1.0});
  JobRequest job = tiny_job(14);
  job.fail_first = 10;
  job.max_retries = 50;  // client asks for more than the cap allows
  job.no_cache = true;
  const JobResult r = submit_and_wait(sup, std::move(job));
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 2);  // 1 + capped single retry
}

TEST(Supervisor, WatchdogCancelsStuckJob) {
  Supervisor sup({.workers = 1, .queue_capacity = 2,
                  .watchdog_period_ms = 5.0, .stuck_job_ms = 25.0});
  JobRequest job = tiny_job(15, 1.0);  // runs far longer than 25 ms
  job.no_cache = true;
  const JobResult r = submit_and_wait(sup, std::move(job));
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_NE(r.error.find("watchdog"), std::string::npos);
  EXPECT_EQ(sup.stats().watchdog_kills.load(), 1u);
}

TEST(Supervisor, DrainCompletesEverythingTyped) {
  Supervisor sup({.workers = 2, .queue_capacity = 4,
                  .drain_budget_ms = 30000.0});
  constexpr int kJobs = 6;
  std::vector<std::promise<JobResult>> promises(kJobs);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    futures.push_back(promises[i].get_future());
    JobRequest job = tiny_job(200 + i);
    job.no_cache = true;
    sup.submit(std::move(job), [&promises, i](const JobResult& r) {
      promises[i].set_value(r);
    });
  }
  sup.drain();
  // Every admitted job reached a typed terminal state by drain's end.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const JobResult r = f.get();
    EXPECT_TRUE(r.status == JobStatus::kOk ||
                r.status == JobStatus::kOverloaded ||
                r.status == JobStatus::kCancelled)
        << to_string(r.status);
  }
  // After drain, new work gets a typed kDraining.
  const JobResult late = submit_and_wait(sup, tiny_job(999));
  EXPECT_EQ(late.status, JobStatus::kDraining);
  // Taxonomy: submitted == rejections + terminals.
  const ServiceStats& s = sup.stats();
  EXPECT_EQ(s.submitted.load(),
            s.terminal() + s.rejected_overload.load() +
                s.rejected_draining.load() + s.rejected_invalid.load());
}

TEST(Supervisor, DrainBudgetCancelsLongJobs) {
  Supervisor sup({.workers = 1, .queue_capacity = 2,
                  .drain_budget_ms = 20.0});
  JobRequest job = tiny_job(16, 1.0);  // multi-second job
  job.no_cache = true;
  std::promise<JobResult> promise;
  std::future<JobResult> future = promise.get_future();
  sup.submit(std::move(job),
             [&promise](const JobResult& r) { promise.set_value(r); });
  const auto t0 = std::chrono::steady_clock::now();
  sup.drain();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  const JobResult r = future.get();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_LT(ms, 5000.0);  // budget + one cancellation batch, not the full run
}

}  // namespace
}  // namespace raidsim::svc
