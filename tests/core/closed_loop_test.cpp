#include "core/closed_loop.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

ClosedLoopOptions small_options(int clients, double think_ms = 30.0) {
  ClosedLoopOptions options;
  options.clients = clients;
  options.think_time_ms = think_ms;
  options.requests = 3000;
  options.trace = "trace2";
  return options;
}

TEST(ClosedLoop, CompletesExactlyTheRequestedCount) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  const auto result = run_closed_loop(config, small_options(4));
  EXPECT_EQ(result.metrics.requests, 3000u);
  EXPECT_GT(result.mean_response_ms(), 0.0);
  EXPECT_GT(result.throughput_io_per_s, 0.0);
}

TEST(ClosedLoop, MoreClientsMoreThroughput) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  const auto few = run_closed_loop(config, small_options(2));
  const auto many = run_closed_loop(config, small_options(16));
  EXPECT_GT(many.throughput_io_per_s, few.throughput_io_per_s * 2.0);
}

TEST(ClosedLoop, FeedbackBoundsResponseGrowth) {
  // The closed loop self-throttles: response grows with the client count
  // but, unlike an open loop beyond saturation, stays finite and roughly
  // proportional to MPL / throughput (Little's law).
  SimulationConfig config;
  config.organization = Organization::kBase;
  const auto result = run_closed_loop(config, small_options(16, 5.0));
  const double outstanding =
      result.throughput_io_per_s * result.mean_response_ms() / 1000.0;
  EXPECT_LE(outstanding, 16.5);  // can never exceed the MPL
  EXPECT_GT(outstanding, 1.0);
}

TEST(ClosedLoop, DeterministicForSeed) {
  SimulationConfig config;
  const auto a = run_closed_loop(config, small_options(4));
  const auto b = run_closed_loop(config, small_options(4));
  EXPECT_DOUBLE_EQ(a.mean_response_ms(), b.mean_response_ms());
  EXPECT_DOUBLE_EQ(a.throughput_io_per_s, b.throughput_io_per_s);
}

TEST(ClosedLoop, Validation) {
  SimulationConfig config;
  auto options = small_options(0);
  EXPECT_THROW(run_closed_loop(config, options), std::invalid_argument);
  options = small_options(4);
  options.requests = 2;
  EXPECT_THROW(run_closed_loop(config, options), std::invalid_argument);
  options = small_options(4);
  options.think_time_ms = -1.0;
  EXPECT_THROW(run_closed_loop(config, options), std::invalid_argument);
}

TEST(ClosedLoop, WorksCached) {
  SimulationConfig config;
  config.organization = Organization::kRaid4;
  config.cached = true;
  config.parity_caching = true;
  const auto result = run_closed_loop(config, small_options(8));
  EXPECT_EQ(result.metrics.requests, 3000u);
  EXPECT_GT(result.metrics.controller.parity_spools, 0u);
}

TEST(ClosedLoop, Raid10EndToEnd) {
  SimulationConfig config;
  config.organization = Organization::kRaid10;
  config.striping_unit_blocks = 4;
  const auto result = run_closed_loop(config, small_options(8));
  EXPECT_EQ(result.metrics.requests, 3000u);
  EXPECT_EQ(result.metrics.total_disks, 20);  // 2N for N=10
}

}  // namespace
}  // namespace raidsim
