// Config-validation fuzz smoke: ~1000 randomized configs (many hostile:
// NaN/Inf knobs, zero disks, negative sizes, absurd shard counts) go
// through the validate-then-run gate. The contract under test:
//   - validate() either passes or throws std::invalid_argument -- never
//     any other exception type, never a crash;
//   - every config validate() accepts actually RUNS: a micro replay
//     completes without throwing. Validation is the only gate between
//     hostile input and the engines, so "accepted implies runnable".

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <random>

#include "runner/sweep_runner.hpp"

namespace raidsim {
namespace {

int uniform_int(std::mt19937_64& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

double uniform_real(std::mt19937_64& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

// A config drawn from plausible ranges. Cross-knob rules (RAID4 needs a
// cache, parity caching needs cached RAID4) are deliberately NOT enforced
// here so the generator also probes validate()'s combination checks.
SimulationConfig plausible_config(std::mt19937_64& rng) {
  SimulationConfig config;
  config.organization = static_cast<Organization>(rng() % 6);
  config.array_data_disks = uniform_int(rng, 1, 24);
  config.striping_unit_blocks = uniform_int(rng, 1, 64);
  config.sync = static_cast<SyncPolicy>(rng() % 5);
  config.parity_placement = static_cast<ParityPlacement>(rng() % 2);
  config.parity_fine_grain_chunk_blocks = uniform_int(rng, 0, 32);
  config.disk_scheduling = static_cast<DiskScheduling>(rng() % 3);
  config.channel_mb_per_second = uniform_real(rng, 1.0, 100.0);
  config.track_buffers_per_disk = uniform_int(rng, 1, 8);
  config.disk_retry_budget = uniform_int(rng, 0, 5);
  config.disk_retry_backoff_ms = uniform_real(rng, 0.0, 10.0);
  config.cached = (rng() % 2) != 0;
  config.cache_bytes = static_cast<std::int64_t>(1 + rng() % 64) << 20;
  config.destage_period_ms = uniform_real(rng, 1.0, 1000.0);
  config.retain_old_data = (rng() % 2) != 0;
  config.parity_caching = (rng() % 8) == 0;
  config.periodic_destage = (rng() % 2) != 0;
  config.intent_journal = (rng() % 4) == 0;
  config.shards = uniform_int(rng, 0, 8);
  config.shard_threads = uniform_int(rng, 0, 8);
  config.obs.sample_interval_ms = 0.0;
  config.tail.enabled = (rng() % 4) == 0;
  return config;
}

// Overwrite one knob with a value validate() must refuse.
void smash_knob(SimulationConfig& config, std::mt19937_64& rng) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  switch (rng() % 14) {
    case 0: config.array_data_disks = 0; break;
    case 1: config.array_data_disks = std::numeric_limits<int>::max(); break;
    case 2: config.striping_unit_blocks = -1; break;
    case 3: config.striping_unit_blocks = 1 << 25; break;
    case 4: config.channel_mb_per_second = nan; break;
    case 5: config.channel_mb_per_second = -inf; break;
    case 6: config.track_buffers_per_disk = 0; break;
    case 7: config.disk_retry_backoff_ms = -1.0; break;
    case 8: config.cache_bytes = -static_cast<std::int64_t>(1 + rng() % 999);
            break;
    case 9: config.destage_period_ms = config.cached ? -5.0 : nan; break;
    case 10: config.shards = -1; break;
    case 11: config.shard_threads = 1 << 20; break;
    case 12: config.obs.sample_interval_ms = inf; break;
    default: config.tail.slow_ewma_factor = 0.0; break;
  }
}

// Most configs get 1-3 hostile knobs; roughly a quarter stay clean so the
// accept path is exercised too (cross-knob rules may still reject those).
SimulationConfig random_config(std::mt19937_64& rng) {
  SimulationConfig config = plausible_config(rng);
  const int smashes = static_cast<int>(rng() % 4);
  for (int i = 0; i < smashes; ++i) smash_knob(config, rng);
  return config;
}

TEST(ConfigFuzz, ValidateIsTypedAndTotal) {
  std::mt19937_64 rng(20260809);
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 1000; ++i) {
    const SimulationConfig config = random_config(rng);
    try {
      config.validate();
      ++accepted;
    } catch (const std::invalid_argument&) {
      ++rejected;  // the one sanctioned failure mode
    } catch (const std::exception& e) {
      FAIL() << "iteration " << i << ": wrong exception type: " << e.what();
    }
  }
  // The generator must actually exercise both sides of the gate.
  EXPECT_GT(accepted, 20) << "generator too hostile to test the accept path";
  EXPECT_GT(rejected, 200) << "generator too tame to test the reject path";
}

TEST(ConfigFuzz, AcceptedConfigsActuallyRun) {
  std::mt19937_64 rng(424242);
  const char* only_env = std::getenv("RAIDSIM_FUZZ_ONLY");
  const int only = only_env ? std::atoi(only_env) : -1;
  int ran = 0;
  for (int i = 0; i < 1000 && ran < 25; ++i) {
    SimulationConfig config = random_config(rng);
    if (only >= 0 && i != only) continue;
    // Keep the micro-runs micro: cap the knobs that multiply runtime.
    config.array_data_disks = 1 + config.array_data_disks % 12;
    config.obs.sample_interval_ms = 0.0;
    try {
      config.validate();
    } catch (const std::invalid_argument&) {
      continue;
    }
    SweepJob job;
    job.config = config;
    job.trace = "trace2";
    job.workload.scale = 0.002;  // ~140 requests: milliseconds per run
    job.workload.seed = static_cast<std::uint64_t>(i);
    try {
      if (std::getenv("RAIDSIM_FUZZ_VERBOSE") != nullptr) {
        std::fprintf(
            stderr,
            "fuzz-run i=%d %s shards=%d threads=%d sched=%d chan=%.17g "
            "bufs=%d retry=%d/%.17g retain=%d pdest=%d journal=%d\n",
            i, config.describe().c_str(), config.shards, config.shard_threads,
            static_cast<int>(config.disk_scheduling),
            config.channel_mb_per_second, config.track_buffers_per_disk,
            config.disk_retry_budget, config.disk_retry_backoff_ms,
            config.retain_old_data ? 1 : 0, config.periodic_destage ? 1 : 0,
            config.intent_journal ? 1 : 0);
      }
      const Metrics metrics = run_sweep_job(job);
      EXPECT_GT(metrics.mean_response_ms(), 0.0);
      ++ran;
    } catch (const std::exception& e) {
      FAIL() << "validated config failed to run (iteration " << i
             << "): " << e.what() << "\n  config: " << config.describe();
    }
  }
  EXPECT_GE(ran, 10) << "fuzz run subset too small to mean anything";
}

TEST(ConfigFuzz, NamedHostileKnobsAreRejectedByName) {
  // Spot-check that the most dangerous knobs produce pointed messages.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  {
    SimulationConfig c;
    c.channel_mb_per_second = nan;
    try {
      c.validate();
      FAIL() << "NaN channel rate accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("channel_mb_per_second"),
                std::string::npos);
    }
  }
  {
    SimulationConfig c;
    c.tail.read_deadline_ms = std::numeric_limits<double>::infinity();
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    SimulationConfig c;
    c.array_data_disks = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    SimulationConfig c;
    c.array_data_disks = 10000000;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    SimulationConfig c;
    c.shards = 1 << 20;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    SimulationConfig c;
    c.cache_bytes = -1;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    // SI sync + reordering scheduler deadlocks gated writes; validate()
    // must refuse it instead of letting the run silently strand requests.
    SimulationConfig c;
    c.sync = SyncPolicy::kSimultaneousIssue;
    c.disk_scheduling = DiskScheduling::kSstf;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c.disk_scheduling = DiskScheduling::kScan;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c.disk_scheduling = DiskScheduling::kFifo;
    EXPECT_NO_THROW(c.validate());
  }
}

}  // namespace
}  // namespace raidsim
