#include "core/reliability.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

TEST(Reliability, PaperFootnoteNumbers) {
  // Section 1, footnote 1: with a 100,000-hour disk MTTF, the permanent
  // storage of a system with over 150 disks has an MTTF below 28 days.
  const double mttdl_150 =
      system_mttdl_hours(Organization::kBase, 150, 10);
  EXPECT_NEAR(mttdl_150 / 24.0, 27.8, 0.1);  // days
  const double mttdl_151 =
      system_mttdl_hours(Organization::kBase, 151, 10);
  EXPECT_LT(mttdl_151 / 24.0, 28.0);
}

TEST(Reliability, RedundancyBuysOrdersOfMagnitude) {
  const ReliabilityParams params;
  const double base = system_mttdl_hours(Organization::kBase, 130, 10, params);
  const double raid5 =
      system_mttdl_hours(Organization::kRaid5, 130, 10, params);
  const double mirror =
      system_mttdl_hours(Organization::kMirror, 130, 10, params);
  EXPECT_GT(raid5 / base, 100.0);  // two-plus orders of magnitude
  EXPECT_GT(mirror / raid5, 1.0);  // pairs beat 11-disk parity groups
}

TEST(Reliability, GroupFormulas) {
  ReliabilityParams params;
  params.disk_mttf_hours = 100000.0;
  params.disk_mttr_hours = 10.0;
  EXPECT_DOUBLE_EQ(group_mttdl_hours(Organization::kBase, 10, params),
                   100000.0);
  EXPECT_DOUBLE_EQ(group_mttdl_hours(Organization::kMirror, 10, params),
                   100000.0 * 100000.0 / 20.0);
  EXPECT_DOUBLE_EQ(group_mttdl_hours(Organization::kRaid5, 10, params),
                   100000.0 * 100000.0 / (11.0 * 10.0 * 10.0));
  EXPECT_DOUBLE_EQ(
      group_mttdl_hours(Organization::kParityStriping, 10, params),
      group_mttdl_hours(Organization::kRaid5, 10, params));
}

TEST(Reliability, LargerGroupsAreLessReliable) {
  // Section 4.2.1: "large arrays are less reliable".
  EXPECT_GT(group_mttdl_hours(Organization::kRaid5, 5),
            group_mttdl_hours(Organization::kRaid5, 20));
}

TEST(Reliability, DiskCountsMatchEqualCapacityComparison) {
  // Section 3.2's example: trace 1 at N=5 -> 26 arrays of 6 disks = 156;
  // N=10 -> 13 arrays of 11 = 143.
  EXPECT_EQ(disks_required(Organization::kRaid5, 130, 5), 156);
  EXPECT_EQ(disks_required(Organization::kRaid5, 130, 10), 143);
  EXPECT_EQ(disks_required(Organization::kParityStriping, 130, 10), 143);
  EXPECT_EQ(disks_required(Organization::kMirror, 130, 10), 260);
  EXPECT_EQ(disks_required(Organization::kBase, 130, 10), 130);
}

TEST(Reliability, StorageOverhead) {
  EXPECT_DOUBLE_EQ(storage_overhead(Organization::kBase, 10), 0.0);
  EXPECT_DOUBLE_EQ(storage_overhead(Organization::kMirror, 10), 1.0);
  EXPECT_DOUBLE_EQ(storage_overhead(Organization::kRaid5, 10), 0.1);
  EXPECT_DOUBLE_EQ(storage_overhead(Organization::kRaid4, 5), 0.2);
}

TEST(Reliability, Validation) {
  EXPECT_THROW(system_mttdl_hours(Organization::kBase, 0, 10),
               std::invalid_argument);
  ReliabilityParams bad;
  bad.disk_mttr_hours = 0.0;
  EXPECT_THROW(group_mttdl_hours(Organization::kRaid5, 10, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
