// End-to-end invariants across every organization, cached and uncached,
// replaying a slice of the trace2 workload. These tests assert the
// physical sanity of whole-system runs and the qualitative effects the
// paper builds its analysis on.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "core/workloads.hpp"

namespace raidsim {
namespace {

Metrics run(Organization org, bool cached, double scale = 0.03,
            SyncPolicy sync = SyncPolicy::kDiskFirst,
            bool parity_caching = false) {
  SimulationConfig config;
  config.organization = org;
  config.cached = cached;
  config.sync = sync;
  config.parity_caching = parity_caching;
  WorkloadOptions options;
  options.scale = scale;
  auto trace = make_workload("trace2", options);
  return run_simulation(config, *trace);
}

struct Case {
  Organization org;
  bool cached;
};

class EveryOrganization : public ::testing::TestWithParam<Case> {};

TEST_P(EveryOrganization, PhysicalSanity) {
  const Metrics m = run(GetParam().org, GetParam().cached);
  // Every request completed and took positive time.
  EXPECT_EQ(m.requests, m.response_all.count());
  EXPECT_GT(m.requests, 1000u);
  EXPECT_GT(m.response_all.stats().min(), 0.0);
  EXPECT_GT(m.mean_response_ms(), 0.0);
  EXPECT_LT(m.mean_response_ms(), 10000.0);
  // Utilizations are physical.
  for (double u : m.disk_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GE(m.channel_utilization, 0.0);
  EXPECT_LE(m.channel_utilization, 1.0 + 1e-9);
  // Hit ratios are ratios.
  EXPECT_GE(m.read_hit_ratio(), 0.0);
  EXPECT_LE(m.read_hit_ratio(), 1.0);
  EXPECT_GE(m.write_hit_ratio(), 0.0);
  EXPECT_LE(m.write_hit_ratio(), 1.0);
  // Every disk in the array is accounted for.
  EXPECT_EQ(static_cast<int>(m.disk_accesses.size()), m.total_disks);
}

TEST_P(EveryOrganization, DisksActuallyUsed) {
  const Metrics m = run(GetParam().org, GetParam().cached);
  std::uint64_t total_ops = 0;
  for (auto c : m.disk_accesses) total_ops += c;
  EXPECT_GT(total_ops, 0u);
  EXPECT_GT(m.disk_totals.busy_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EveryOrganization,
    ::testing::Values(Case{Organization::kBase, false},
                      Case{Organization::kBase, true},
                      Case{Organization::kMirror, false},
                      Case{Organization::kMirror, true},
                      Case{Organization::kRaid5, false},
                      Case{Organization::kRaid5, true},
                      Case{Organization::kParityStriping, false},
                      Case{Organization::kParityStriping, true},
                      Case{Organization::kRaid4, true}),
    [](const auto& info) {
      return to_string(info.param.org) +
             (info.param.cached ? std::string("_cached")
                                : std::string("_uncached"));
    });

TEST(Integration, Raid5BalancesSkewedLoad) {
  // The Figure 6/7 effect: the Base organization inherits the workload's
  // disk skew; RAID5 with a 1-block striping unit smooths it out.
  const Metrics base = run(Organization::kBase, false);
  const Metrics raid5 = run(Organization::kRaid5, false);
  EXPECT_GT(base.disk_access_cv(), 0.4);
  EXPECT_LT(raid5.disk_access_cv(), 0.1);
}

TEST(Integration, MirrorBeatsBaseOnReads) {
  const Metrics base = run(Organization::kBase, false);
  const Metrics mirror = run(Organization::kMirror, false);
  EXPECT_LT(mirror.response_read.mean(), base.response_read.mean());
}

TEST(Integration, ParityWritePenaltyVisibleUncached) {
  const Metrics base = run(Organization::kBase, false);
  const Metrics raid5 = run(Organization::kRaid5, false);
  // Writes pay for the read-modify-write and parity synchronization.
  EXPECT_GT(raid5.response_write.mean(), base.response_write.mean() * 1.2);
}

TEST(Integration, CachingAbsorbsWrites) {
  const Metrics uncached = run(Organization::kRaid5, false);
  const Metrics cached = run(Organization::kRaid5, true);
  // Cached writes complete at channel speed -- orders of magnitude
  // faster than the uncached read-modify-write chain.
  EXPECT_LT(cached.response_write.mean(),
            uncached.response_write.mean() / 4.0);
  EXPECT_LT(cached.mean_response_ms(), uncached.mean_response_ms());
}

TEST(Integration, SimultaneousIssueWorstSyncPolicy) {
  // Figure 4's headline: SI wastes rotations holding the parity disk.
  const Metrics si =
      run(Organization::kRaid5, false, 0.03, SyncPolicy::kSimultaneousIssue);
  const Metrics dfpr =
      run(Organization::kRaid5, false, 0.03, SyncPolicy::kDiskFirstPriority);
  EXPECT_GT(si.disk_totals.held_rotations, dfpr.disk_totals.held_rotations);
  EXPECT_GE(si.response_write.mean(), dfpr.response_write.mean());
}

TEST(Integration, ParityCachingRelievesDataDisks) {
  const Metrics raid4 = run(Organization::kRaid4, true, 0.03,
                            SyncPolicy::kDiskFirst, true);
  EXPECT_GT(raid4.controller.parity_spools, 0u);
  // All parity work lands on the dedicated disk: the last disk of the
  // single array.
  EXPECT_GT(raid4.disk_accesses.back(), 0u);
}

TEST(Integration, CachedHitRatiosReasonable) {
  const Metrics m = run(Organization::kBase, true, 0.2);
  // Trace 2 at 16 MB: low read hit ratio, ~20-30% write hit ratio
  // (Figure 11).
  EXPECT_LT(m.read_hit_ratio(), 0.15);
  EXPECT_GT(m.write_hit_ratio(), 0.08);
  EXPECT_LT(m.write_hit_ratio(), 0.5);
}

TEST(Integration, EventAccountingConsistent) {
  const Metrics m = run(Organization::kRaid5, true);
  EXPECT_GT(m.events_executed, m.requests);
  // Disk ops: at least one per read miss and destage write.
  EXPECT_GE(m.disk_totals.ops(),
            m.cache.read_misses > 0 ? 1u : 0u);
}

}  // namespace
}  // namespace raidsim
