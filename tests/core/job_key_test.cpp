#include "core/job_key.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace raidsim {
namespace {

TEST(JobKey, IdenticalInputsIdenticalKeys) {
  SimulationConfig a, b;
  WorkloadOptions wo;
  EXPECT_EQ(job_canonical_key(a, "trace2", wo),
            job_canonical_key(b, "trace2", wo));
  EXPECT_EQ(job_fingerprint(a, "trace2", wo),
            job_fingerprint(b, "trace2", wo));
}

TEST(JobKey, EveryResultDeterminingKnobChangesTheKey) {
  const SimulationConfig base;
  const WorkloadOptions wo;
  const std::string key0 = job_canonical_key(base, "trace2", wo);

  auto differs = [&](auto mutate, const char* what) {
    SimulationConfig c = base;
    WorkloadOptions w = wo;
    std::string trace = "trace2";
    mutate(c, w, trace);
    EXPECT_NE(job_canonical_key(c, trace, w), key0) << what;
  };
  differs([](auto& c, auto&, auto&) { c.organization = Organization::kMirror; },
          "organization");
  differs([](auto& c, auto&, auto&) { c.array_data_disks = 11; }, "disks");
  differs([](auto& c, auto&, auto&) { c.striping_unit_blocks = 2; }, "su");
  differs([](auto& c, auto&, auto&) { c.sync = SyncPolicy::kReadFirst; },
          "sync");
  differs([](auto& c, auto&, auto&) { c.cached = true; }, "cached");
  differs([](auto& c, auto&, auto&) { c.cache_bytes += 4096; }, "cache_bytes");
  differs([](auto& c, auto&, auto&) { c.shards = 2; }, "shards");
  differs([](auto& c, auto&, auto&) { c.tail.enabled = true; }, "tail");
  differs([](auto& c, auto&, auto&) { c.channel_mb_per_second = 20.0; },
          "channel");
  differs([](auto&, auto& w, auto&) { w.scale = 0.5; }, "scale");
  differs([](auto&, auto& w, auto&) { w.speed = 2.0; }, "speed");
  differs([](auto&, auto& w, auto&) { w.seed = 1; }, "seed");
  differs([](auto&, auto&, auto& t) { t = "trace1"; }, "trace");
}

TEST(JobKey, ThreadCountDoesNotChangeTheKey) {
  // shard_threads never changes results (determinism contract), so two
  // jobs differing only in thread count MUST share a cache entry.
  SimulationConfig a, b;
  a.shards = 4;
  b.shards = 4;
  a.shard_threads = 1;
  b.shard_threads = 8;
  const WorkloadOptions wo;
  EXPECT_EQ(job_canonical_key(a, "trace2", wo),
            job_canonical_key(b, "trace2", wo));
}

TEST(JobKey, TracingDoesNotChangeTheKey) {
  SimulationConfig a, b;
  b.obs.tracing = true;
  b.obs.max_trace_events = 1024;
  const WorkloadOptions wo;
  EXPECT_EQ(job_canonical_key(a, "trace2", wo),
            job_canonical_key(b, "trace2", wo));
}

TEST(JobKey, NearbyDoublesStayDistinct) {
  // %.17g round-trips every IEEE double: adjacent representable values
  // must produce different keys.
  SimulationConfig a, b;
  b.channel_mb_per_second =
      std::nextafter(b.channel_mb_per_second, 1e9);
  const WorkloadOptions wo;
  EXPECT_NE(job_canonical_key(a, "trace2", wo),
            job_canonical_key(b, "trace2", wo));
}

TEST(JobKey, Fnv1a64KnownVector) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

}  // namespace
}  // namespace raidsim
