#include "core/replication.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace raidsim {
namespace {

TEST(Replication, StatisticsOfKnownSamples) {
  ReplicationResult r;
  r.mean_response_ms = {10.0, 12.0, 14.0};
  EXPECT_NEAR(r.mean(), 12.0, 1e-12);
  EXPECT_NEAR(r.stddev(), 2.0, 1e-12);
  EXPECT_NEAR(r.ci95_half_width(), 1.96 * 2.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NE(r.summary().find("n=3"), std::string::npos);
}

TEST(Replication, SingleSampleHasNoSpread) {
  ReplicationResult r;
  r.mean_response_ms = {5.0};
  EXPECT_EQ(r.stddev(), 0.0);
  EXPECT_EQ(r.ci95_half_width(), 0.0);
}

TEST(Replication, RunsIndependentSeeds) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  WorkloadOptions options;
  options.scale = 0.02;
  const auto result = run_replicated(config, "trace2", options, 3);
  ASSERT_EQ(result.mean_response_ms.size(), 3u);
  ASSERT_EQ(result.metrics.size(), 3u);
  // Different seeds must give different (but same-order) results.
  EXPECT_NE(result.mean_response_ms[0], result.mean_response_ms[1]);
  EXPECT_GT(result.mean(), 0.0);
  for (const auto& m : result.metrics)
    EXPECT_EQ(m.requests, result.metrics[0].requests);
  // Cross-seed spread should be moderate relative to the mean at this
  // scale (sanity band, not a tight statistical claim).
  EXPECT_LT(result.stddev(), result.mean());
}

TEST(Replication, RejectsZeroReplications) {
  SimulationConfig config;
  EXPECT_THROW(run_replicated(config, "trace2", {}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
