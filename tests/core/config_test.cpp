#include "core/config.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

TEST(Config, Table4Defaults) {
  SimulationConfig config;
  EXPECT_EQ(config.array_data_disks, 10);
  EXPECT_EQ(config.striping_unit_blocks, 1);
  EXPECT_EQ(config.sync, SyncPolicy::kDiskFirst);
  EXPECT_EQ(config.parity_placement, ParityPlacement::kMiddleCylinders);
  EXPECT_EQ(config.disk_geometry.block_bytes(), 4096);
  EXPECT_EQ(config.cache_bytes, 16ll << 20);
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, ValidationCatchesInconsistencies) {
  SimulationConfig config;
  config.array_data_disks = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = SimulationConfig{};
  config.striping_unit_blocks = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = SimulationConfig{};
  config.channel_mb_per_second = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = SimulationConfig{};
  config.parity_caching = true;  // requires cached RAID4
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.cached = true;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.organization = Organization::kRaid4;
  EXPECT_NO_THROW(config.validate());

  config = SimulationConfig{};
  config.organization = Organization::kRaid4;  // uncached RAID4 not studied
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = SimulationConfig{};
  config.cached = true;
  config.cache_bytes = 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Config, DescribeMentionsKeyParameters) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.striping_unit_blocks = 8;
  EXPECT_NE(config.describe().find("RAID5"), std::string::npos);
  EXPECT_NE(config.describe().find("SU=8"), std::string::npos);
  EXPECT_NE(config.describe().find("uncached"), std::string::npos);

  config.cached = true;
  EXPECT_NE(config.describe().find("cache=16MB"), std::string::npos);

  config.organization = Organization::kParityStriping;
  EXPECT_NE(config.describe().find("parity=middle"), std::string::npos);
}

TEST(Config, ArrayConfigPropagation) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.striping_unit_blocks = 4;
  config.sync = SyncPolicy::kReadFirst;
  const auto array_cfg = config.array_config(7, 100000);
  EXPECT_EQ(array_cfg.layout.data_disks, 7);
  EXPECT_EQ(array_cfg.layout.data_blocks_per_disk, 100000);
  EXPECT_EQ(array_cfg.layout.striping_unit_blocks, 4);
  EXPECT_EQ(array_cfg.sync, SyncPolicy::kReadFirst);
  EXPECT_EQ(array_cfg.layout.physical_blocks_per_disk,
            config.disk_geometry.total_blocks());
}

TEST(Config, CacheConfigPropagation) {
  SimulationConfig config;
  config.cache_bytes = 8 << 20;
  config.destage_period_ms = 123.0;
  config.retain_old_data = false;
  const auto cache_cfg = config.cache_config();
  EXPECT_EQ(cache_cfg.cache_bytes, 8 << 20);
  EXPECT_EQ(cache_cfg.destage_period_ms, 123.0);
  EXPECT_FALSE(cache_cfg.retain_old_data);
}

}  // namespace
}  // namespace raidsim
