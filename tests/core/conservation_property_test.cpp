// Cross-organization conservation properties: replaying the same random
// workload through every organization must preserve the physical
// accounting identities, independent of configuration.
#include <gtest/gtest.h>

#include <deque>

#include "core/simulator.hpp"
#include "util/rng.hpp"

namespace raidsim {
namespace {

class RandomStream : public TraceStream {
 public:
  RandomStream(TraceGeometry geo, int requests, std::uint64_t seed)
      : geo_(geo), remaining_(requests), rng_(seed) {}
  const TraceGeometry& geometry() const override { return geo_; }
  std::optional<TraceRecord> next() override {
    if (remaining_-- <= 0) return std::nullopt;
    TraceRecord rec;
    rec.delta_ms = rng_.exponential(4.0);
    rec.is_write = rng_.bernoulli(0.3);
    rec.block_count = rng_.bernoulli(0.1)
                          ? static_cast<int>(rng_.uniform_i64(2, 8))
                          : 1;
    const std::int64_t disk = rng_.uniform_i64(0, geo_.data_disks - 1);
    const std::int64_t offset = rng_.uniform_i64(
        0, geo_.blocks_per_disk - rec.block_count);
    rec.block = disk * geo_.blocks_per_disk + offset;
    return rec;
  }

 private:
  TraceGeometry geo_;
  int remaining_;
  Rng rng_;
};

struct Param {
  Organization org;
  bool cached;
  int n;
  int striping_unit;
};

class ConservationProperty : public ::testing::TestWithParam<Param> {};

TEST_P(ConservationProperty, PhysicalAccountingHolds) {
  SimulationConfig config;
  config.organization = GetParam().org;
  config.cached = GetParam().cached;
  config.array_data_disks = GetParam().n;
  config.striping_unit_blocks = GetParam().striping_unit;

  TraceGeometry geo{7, 5000};  // one ragged array for n=4/5
  RandomStream trace(geo, 2500, 33);
  Simulator sim(config, geo);
  const Metrics m = sim.run(trace);

  // Every request completed, with a positive response.
  ASSERT_EQ(m.requests, 2500u);
  EXPECT_EQ(m.response_all.count(), 2500u);
  EXPECT_GT(m.response_all.stats().min(), 0.0);

  // Busy time covers at least its accounted components (seek + latency +
  // transfer + gate holds); read-modify-writes additionally hold the
  // disk across the inherent rotation between the read and the in-place
  // write, so the identity is exact only when no RMW occurred.
  const auto& d = m.disk_totals;
  const double components =
      d.seek_ms + d.latency_ms + d.transfer_ms + d.hold_ms;
  EXPECT_GE(d.busy_ms, components - 1e-6);
  if (d.rmws == 0) {
    EXPECT_NEAR(d.busy_ms, components, d.busy_ms * 1e-6 + 1e-6);
  } else {
    // The unaccounted gap is bounded by one revolution per RMW.
    const double rotation = config.disk_geometry.rotation_ms();
    EXPECT_LE(d.busy_ms - components,
              static_cast<double>(d.rmws) * rotation + 1e-6);
  }

  // No disk can be busy longer than the run.
  for (double u : m.disk_utilization) EXPECT_LE(u, 1.0 + 1e-9);

  // Disk op counts match the access counters.
  std::uint64_t ops = 0;
  for (auto c : m.disk_accesses) ops += c;
  EXPECT_EQ(ops, d.ops());

  // Every producing organization touched at least one disk per request
  // on average (cached runs may do fewer thanks to hits).
  if (!GetParam().cached) {
    EXPECT_GE(d.ops(), m.requests);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConservationProperty,
    ::testing::Values(Param{Organization::kBase, false, 4, 1},
                      Param{Organization::kBase, true, 4, 1},
                      Param{Organization::kMirror, false, 4, 1},
                      Param{Organization::kMirror, true, 4, 1},
                      Param{Organization::kRaid5, false, 4, 1},
                      Param{Organization::kRaid5, false, 5, 4},
                      Param{Organization::kRaid5, true, 4, 2},
                      Param{Organization::kRaid4, true, 4, 1},
                      Param{Organization::kParityStriping, false, 4, 1},
                      Param{Organization::kParityStriping, true, 4, 1},
                      Param{Organization::kRaid10, false, 4, 2},
                      Param{Organization::kRaid10, true, 4, 2}),
    [](const auto& info) {
      return to_string(info.param.org) +
             (info.param.cached ? std::string("_cached") : std::string("_raw")) +
             "_n" + std::to_string(info.param.n) + "_u" +
             std::to_string(info.param.striping_unit);
    });

}  // namespace
}  // namespace raidsim
