#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "core/workloads.hpp"

namespace raidsim {
namespace {

class FixedStream : public TraceStream {
 public:
  FixedStream(TraceGeometry geo, std::deque<TraceRecord> records)
      : geo_(geo), records_(std::move(records)) {}
  const TraceGeometry& geometry() const override { return geo_; }
  std::optional<TraceRecord> next() override {
    if (records_.empty()) return std::nullopt;
    TraceRecord r = records_.front();
    records_.pop_front();
    return r;
  }

 private:
  TraceGeometry geo_;
  std::deque<TraceRecord> records_;
};

TEST(Simulator, RoutesDatabaseBlocksToArrays) {
  SimulationConfig config;
  config.organization = Organization::kBase;
  config.array_data_disks = 10;
  TraceGeometry geo{25, 1000};  // 25 disks -> 3 arrays (10, 10, 5)
  Simulator sim(config, geo);
  EXPECT_EQ(sim.arrays(), 3);
  EXPECT_EQ(sim.total_disks(), 25);

  // Disk 0, offset 0.
  auto [a0, l0] = sim.route(0);
  EXPECT_EQ(a0, 0);
  EXPECT_EQ(l0, 0);
  // Disk 12, offset 34 -> array 1, local disk 2.
  auto [a1, l1] = sim.route(12 * 1000 + 34);
  EXPECT_EQ(a1, 1);
  EXPECT_EQ(l1, 2 * 1000 + 34);
  // Disk 24 -> array 2, local disk 4.
  auto [a2, l2] = sim.route(24 * 1000 + 999);
  EXPECT_EQ(a2, 2);
  EXPECT_EQ(l2, 4 * 1000 + 999);
}

TEST(Simulator, RaggedLastArraySizedToRemainder) {
  SimulationConfig config;
  config.organization = Organization::kMirror;
  config.array_data_disks = 10;
  TraceGeometry geo{25, 1000};
  Simulator sim(config, geo);
  // Mirror: 2x disks per array; last array has 5 data disks -> 10.
  EXPECT_EQ(sim.total_disks(), 2 * 25);
  EXPECT_EQ(sim.controller(2).layout().data_disks(), 5);
}

TEST(Simulator, SmallerDatabaseThanArraySize) {
  SimulationConfig config;
  config.array_data_disks = 15;
  TraceGeometry geo{10, 1000};
  Simulator sim(config, geo);
  EXPECT_EQ(sim.arrays(), 1);
  EXPECT_EQ(sim.controller(0).layout().data_disks(), 10);
}

TEST(Simulator, CountsEveryRequest) {
  SimulationConfig config;
  config.organization = Organization::kBase;
  config.array_data_disks = 2;
  TraceGeometry geo{2, 1000};
  FixedStream trace(geo, {
                             {0.0, 0, 1, false},
                             {5.0, 1500, 1, true},
                             {5.0, 10, 2, false},
                         });
  Simulator sim(config, geo);
  const Metrics m = sim.run(trace);
  EXPECT_EQ(m.requests, 3u);
  EXPECT_EQ(m.response_read.count(), 2u);
  EXPECT_EQ(m.response_write.count(), 1u);
  EXPECT_GT(m.mean_response_ms(), 0.0);
  EXPECT_EQ(m.arrays, 1);
  EXPECT_EQ(m.disk_accesses.size(), 2u);
  EXPECT_GE(m.elapsed_ms, 10.0);
}

TEST(Simulator, RejectsMismatchedGeometry) {
  SimulationConfig config;
  TraceGeometry geo{10, 1000};
  Simulator sim(config, geo);
  FixedStream trace(TraceGeometry{5, 1000}, {});
  EXPECT_THROW(sim.run(trace), std::invalid_argument);
}

TEST(Simulator, RejectsOutOfRangeRecords) {
  SimulationConfig config;
  config.organization = Organization::kBase;
  TraceGeometry geo{10, 1000};
  Simulator sim(config, geo);
  FixedStream trace(geo, {{0.0, 10 * 1000, 1, false}});
  EXPECT_THROW(sim.run(trace), std::out_of_range);
}

TEST(Simulator, RunIsSingleShot) {
  SimulationConfig config;
  TraceGeometry geo{10, 1000};
  Simulator sim(config, geo);
  FixedStream a(geo, {});
  sim.run(a);
  FixedStream b(geo, {});
  EXPECT_THROW(sim.run(b), std::logic_error);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimulationConfig config;
    config.organization = Organization::kRaid5;
    WorkloadOptions options;
    options.scale = 0.01;
    auto trace = make_workload("trace2", options);
    return run_simulation(config, *trace);
  };
  const Metrics a = run_once();
  const Metrics b = run_once();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_DOUBLE_EQ(a.mean_response_ms(), b.mean_response_ms());
  EXPECT_DOUBLE_EQ(a.elapsed_ms, b.elapsed_ms);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Workloads, ScaleShortensTraceProportionally) {
  WorkloadOptions options;
  options.scale = 0.1;
  const TraceProfile p = workload_profile("trace2", options);
  EXPECT_NEAR(static_cast<double>(p.requests), 6954.0, 1.0);
  EXPECT_NEAR(p.duration_s, 600.0, 1.0);
  EXPECT_THROW(workload_profile("trace2", {.scale = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(workload_profile("trace2", {.scale = 1.5}),
               std::invalid_argument);
}

TEST(Workloads, SeedOverride) {
  WorkloadOptions options;
  options.scale = 0.01;
  options.seed = 777;
  EXPECT_EQ(workload_profile("trace1", options).seed, 777u);
}

TEST(Workloads, SpeedAppliesAdapter) {
  WorkloadOptions slow;
  slow.scale = 0.01;
  WorkloadOptions fast = slow;
  fast.speed = 2.0;
  auto a = make_workload("trace2", slow);
  auto b = make_workload("trace2", fast);
  double sum_a = 0.0, sum_b = 0.0;
  while (auto r = a->next()) sum_a += r->delta_ms;
  while (auto r = b->next()) sum_b += r->delta_ms;
  EXPECT_NEAR(sum_b, sum_a / 2.0, 1e-6);
}

}  // namespace
}  // namespace raidsim
