#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

TEST(Metrics, EmptyDefaults) {
  Metrics m;
  EXPECT_EQ(m.mean_response_ms(), 0.0);
  EXPECT_EQ(m.mean_disk_utilization(), 0.0);
  EXPECT_EQ(m.max_disk_utilization(), 0.0);
  EXPECT_EQ(m.disk_access_cv(), 0.0);
  EXPECT_EQ(m.read_hit_ratio(), 0.0);
}

TEST(Metrics, UtilizationAggregates) {
  Metrics m;
  m.disk_utilization = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(m.mean_disk_utilization(), 0.25, 1e-12);
  EXPECT_NEAR(m.max_disk_utilization(), 0.4, 1e-12);
}

TEST(Metrics, DiskAccessCv) {
  Metrics m;
  m.disk_accesses = {100, 100, 100, 100};
  EXPECT_NEAR(m.disk_access_cv(), 0.0, 1e-12);
  m.disk_accesses = {0, 200};
  EXPECT_NEAR(m.disk_access_cv(), 1.0, 1e-12);  // sd=100, mean=100
  m.disk_accesses = {0, 0, 0};
  EXPECT_EQ(m.disk_access_cv(), 0.0);  // zero mean guarded
}

TEST(Metrics, HitRatiosDelegateToControllerStats) {
  Metrics m;
  m.controller.read_requests = 10;
  m.controller.read_request_hits = 4;
  m.controller.write_requests = 5;
  m.controller.write_request_hits = 5;
  EXPECT_NEAR(m.read_hit_ratio(), 0.4, 1e-12);
  EXPECT_NEAR(m.write_hit_ratio(), 1.0, 1e-12);
}

}  // namespace
}  // namespace raidsim
