#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace raidsim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(5.0, [&] { order.push_back(2); });
  eq.schedule_at(1.0, [&] { order.push_back(1); });
  eq.schedule_at(9.0, [&] { order.push_back(3); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 9.0);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) eq.schedule_at(4.0, [&order, i] { order.push_back(i); });
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue eq;
  double fired_at = -1.0;
  eq.schedule_at(10.0, [&] {
    eq.schedule_in(2.5, [&] { fired_at = eq.now(); });
  });
  eq.run();
  EXPECT_EQ(fired_at, 12.5);
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue eq;
  double fired_at = -1.0;
  eq.schedule_at(10.0, [&] {
    eq.schedule_at(3.0, [&] { fired_at = eq.now(); });
  });
  eq.run();
  EXPECT_EQ(fired_at, 10.0);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue eq;
  bool ran = false;
  const EventId id = eq.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(eq.cancel(id));
  EXPECT_FALSE(eq.cancel(id));  // second cancel is a no-op
  eq.run();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue eq;
  EXPECT_FALSE(eq.cancel(0));
  EXPECT_FALSE(eq.cancel(12345));
}

TEST(EventQueue, CancelAfterRunReturnsFalse) {
  EventQueue eq;
  const EventId id = eq.schedule_at(1.0, [] {});
  eq.run();
  EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, PendingAndEmptyTrackCancellations) {
  EventQueue eq;
  const EventId a = eq.schedule_at(1.0, [] {});
  eq.schedule_at(2.0, [] {});
  EXPECT_EQ(eq.pending(), 2u);
  eq.cancel(a);
  EXPECT_EQ(eq.pending(), 1u);
  eq.run();
  EXPECT_TRUE(eq.empty());
  EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunWithLimit) {
  EventQueue eq;
  int count = 0;
  for (int i = 0; i < 5; ++i) eq.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(eq.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(eq.run(), 2u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue eq;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) eq.schedule_at(t, [&fired, &eq] { fired.push_back(eq.now()); });
  eq.run_until(2.0);  // events at exactly 2.0 run
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(eq.now(), 2.0);
  eq.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(eq.now(), 10.0);  // advances even past the last event
}

TEST(EventQueue, RunUntilSkipsCancelledFront) {
  EventQueue eq;
  bool ran = false;
  const EventId id = eq.schedule_at(1.0, [&] { ran = true; });
  eq.schedule_at(5.0, [] {});
  eq.cancel(id);
  EXPECT_EQ(eq.run_until(2.0), 0u);
  EXPECT_FALSE(ran);
}

TEST(EventQueue, ExecutedCounts) {
  EventQueue eq;
  for (int i = 0; i < 7; ++i) eq.schedule_in(1.0, [] {});
  eq.run();
  EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue eq;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) eq.schedule_in(1.0, recurse);
  };
  eq.schedule_at(0.0, recurse);
  eq.run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(eq.now(), 49.0);
}

}  // namespace
}  // namespace raidsim
