// Edge cases of the event kernel beyond the basics: cancellation from
// within callbacks, self-rescheduling patterns, and run_until interplay
// with cancelled heads.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace raidsim {
namespace {

TEST(EventQueueEdge, CancelFromWithinEarlierEvent) {
  EventQueue eq;
  bool later_ran = false;
  const EventId later = eq.schedule_at(5.0, [&] { later_ran = true; });
  eq.schedule_at(1.0, [&] { EXPECT_TRUE(eq.cancel(later)); });
  eq.run();
  EXPECT_FALSE(later_ran);
  EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventQueueEdge, CancelSelfIsHarmlessNoOp) {
  EventQueue eq;
  EventId self = 0;
  int runs = 0;
  self = eq.schedule_at(1.0, [&] {
    ++runs;
    EXPECT_FALSE(eq.cancel(self));  // already executing
  });
  eq.run();
  EXPECT_EQ(runs, 1);
}

TEST(EventQueueEdge, RescheduleChainAdvancesTime) {
  EventQueue eq;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(eq.now());
    if (times.size() < 4) eq.schedule_in(2.5, tick);
  };
  eq.schedule_at(1.0, tick);
  eq.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.5, 6.0, 8.5}));
}

TEST(EventQueueEdge, RunUntilThenRunContinues) {
  EventQueue eq;
  int count = 0;
  for (double t : {1.0, 2.0, 3.0}) eq.schedule_at(t, [&] { ++count; });
  eq.run_until(1.5);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(eq.now(), 1.5);
  eq.run();
  EXPECT_EQ(count, 3);
}

TEST(EventQueueEdge, CancelledEventsDoNotAdvanceClockViaRunUntil) {
  EventQueue eq;
  const EventId id = eq.schedule_at(10.0, [] {});
  eq.cancel(id);
  eq.run_until(5.0);
  EXPECT_EQ(eq.now(), 5.0);
  eq.run();
  EXPECT_EQ(eq.now(), 5.0);  // nothing left to execute
}

TEST(EventQueueEdge, ManyEventsStableOrder) {
  EventQueue eq;
  std::vector<int> order;
  // Interleave two time points; each point must preserve FIFO.
  for (int i = 0; i < 100; ++i) {
    eq.schedule_at(i % 2 == 0 ? 1.0 : 2.0, [&order, i] { order.push_back(i); });
  }
  eq.run();
  ASSERT_EQ(order.size(), 100u);
  // All even indices (t=1) precede all odd ones (t=2), each in order.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)] % 2, 0);
  for (int i = 1; i < 50; ++i) {
    EXPECT_LT(order[static_cast<std::size_t>(i - 1)], order[static_cast<std::size_t>(i)]);
    EXPECT_LT(order[static_cast<std::size_t>(49 + i)], order[static_cast<std::size_t>(50 + i)]);
  }
}

}  // namespace
}  // namespace raidsim
