// Differential and boundary tests for the calendar event kernel.
//
// The calendar queue's contract is bit-identical execution order with the
// 4-ary heap yardstick: ordering is decided solely by exact (time, seq)
// comparisons, never by bucket geometry. These tests drive both kernels
// with identical operation streams — including cancel-heavy hedged-read
// patterns, run_until slices landing exactly on bucket and year edges,
// and far-future ladder jumps — and require identical observable behavior
// (execution order, clocks, counts, and exact pending()/empty()).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace raidsim {
namespace {

/// SplitMix64: tiny deterministic PRNG for the fuzz driver.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// One kernel under the fuzz driver: execution log + live-id tracking.
struct Harness {
  explicit Harness(EventKernel kernel) : eq(kernel) {}

  EventQueue eq;
  std::vector<int> order;       // tags in execution order
  std::vector<SimTime> times;   // times in execution order
  std::vector<EventId> live;    // ids believed pending (may be stale-free)

  void schedule(int tag, SimTime delay, int chain) {
    live.push_back(eq.schedule_in(delay, [this, tag, chain] {
      order.push_back(tag);
      times.push_back(eq.now());
      // Self-rescheduling chain: exercises inserts landing mid-dispatch
      // (including undercutting an active batch in run()/run_until()).
      if (chain > 0) {
        const SimTime d = (tag % 3 == 0) ? 0.0 : 0.125 * (tag % 7);
        schedule(tag + 1000000, d, chain - 1);
      }
    }));
  }
};

/// Drives two kernels with an identical randomized op stream and checks
/// every observable agrees at every step.
void differential_fuzz(std::uint64_t seed, int ops) {
  Rng rng(seed);
  Harness cal(EventKernel::kCalendar);
  Harness heap(EventKernel::kHeap);
  int tag = 0;

  for (int i = 0; i < ops; ++i) {
    const std::uint64_t pick = rng.below(100);
    if (pick < 45) {
      // Schedule: near-future band mostly, mid band sometimes, far
      // future (ladder territory) occasionally, huge rarely.
      double delay;
      const std::uint64_t band = rng.below(100);
      if (band < 60) {
        delay = rng.unit() * 8.0;
      } else if (band < 85) {
        delay = rng.unit() * 300.0;
      } else if (band < 97) {
        delay = 1000.0 + rng.unit() * 50000.0;
      } else {
        delay = 1e7 + rng.unit() * 1e9;
      }
      const int chain = static_cast<int>(rng.below(3));
      ++tag;
      cal.schedule(tag, delay, chain);
      heap.schedule(tag, delay, chain);
    } else if (pick < 65) {
      // Cancel a (possibly stale) remembered id; both must agree on the
      // outcome and on pending() afterwards.
      if (!cal.live.empty()) {
        const std::size_t j = rng.below(cal.live.size());
        ASSERT_EQ(cal.eq.cancel(cal.live[j]), heap.eq.cancel(heap.live[j]));
        cal.live.erase(cal.live.begin() + static_cast<std::ptrdiff_t>(j));
        heap.live.erase(heap.live.begin() + static_cast<std::ptrdiff_t>(j));
      }
    } else if (pick < 75) {
      ASSERT_EQ(cal.eq.step(), heap.eq.step());
    } else if (pick < 85) {
      const std::uint64_t limit = rng.below(64);
      ASSERT_EQ(cal.eq.run(limit), heap.eq.run(limit));
    } else {
      // run_until with deliberately edge-prone targets: multiples of the
      // initial bucket width land exactly on bucket boundaries.
      double dt;
      if (rng.below(2) == 0) {
        dt = static_cast<double>(rng.below(64)) *
             EventQueue::kInitialBucketWidthMs;
      } else {
        dt = rng.unit() * 40.0;
      }
      ASSERT_EQ(cal.eq.run_until(cal.eq.now() + dt),
                heap.eq.run_until(heap.eq.now() + dt));
    }
    ASSERT_EQ(cal.eq.now(), heap.eq.now()) << "op " << i;
    ASSERT_EQ(cal.eq.pending(), heap.eq.pending()) << "op " << i;
    ASSERT_EQ(cal.eq.empty(), heap.eq.empty()) << "op " << i;
    ASSERT_EQ(cal.eq.executed(), heap.eq.executed()) << "op " << i;
    ASSERT_EQ(cal.order.size(), heap.order.size()) << "op " << i;
    if (!cal.order.empty()) {
      ASSERT_EQ(cal.order.back(), heap.order.back()) << "op " << i;
    }
  }

  // Drain both completely and compare the full histories.
  cal.eq.run();
  heap.eq.run();
  ASSERT_EQ(cal.order, heap.order);
  ASSERT_EQ(cal.times, heap.times);
  ASSERT_EQ(cal.eq.now(), heap.eq.now());
  EXPECT_TRUE(cal.eq.empty());
  EXPECT_TRUE(heap.eq.empty());
}

TEST(CalendarQueue, DifferentialFuzzVsHeap) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    differential_fuzz(seed * 0x5eed, 4000);
}

TEST(CalendarQueue, DifferentialFuzzLongRun) {
  differential_fuzz(20260809, 20000);
}

// Hedged-read pattern: every request schedules a hedge and a deadline,
// and whichever "completes" first cancels the other two. The calendar
// must keep pending() exact under constant lazy deletion and never
// strand a live event.
TEST(CalendarQueue, CancelHeavyHedgedReadsKeepPendingExact) {
  EventQueue cal(EventKernel::kCalendar);
  EventQueue heap(EventKernel::kHeap);
  Rng rng(7);
  int cal_done = 0;
  int heap_done = 0;

  for (int round = 0; round < 200; ++round) {
    struct Trio {
      EventId a = 0, b = 0, c = 0;
    };
    std::vector<Trio> cal_ids(16), heap_ids(16);
    for (int r = 0; r < 16; ++r) {
      const double t0 = rng.unit() * 4.0;
      const double hedge = t0 + 2.0 + rng.unit();
      const double deadline = t0 + 30.0;
      auto arm = [](EventQueue& eq, Trio& ids, double primary, double h,
                    double d, int* done) {
        ids.a = eq.schedule_in(primary, [&eq, &ids, done] {
          ++*done;
          eq.cancel(ids.b);
          eq.cancel(ids.c);
        });
        ids.b = eq.schedule_in(h, [&eq, &ids, done] {
          ++*done;
          eq.cancel(ids.a);
          eq.cancel(ids.c);
        });
        ids.c = eq.schedule_in(d, [&eq, &ids, done] {
          ++*done;
          eq.cancel(ids.a);
          eq.cancel(ids.b);
        });
      };
      arm(cal, cal_ids[static_cast<std::size_t>(r)], t0, hedge, deadline,
          &cal_done);
      arm(heap, heap_ids[static_cast<std::size_t>(r)], t0, hedge, deadline,
          &heap_done);
    }
    // Run partway (some trios resolved, some mid-flight), then drain.
    const double slice = cal.now() + 2.0;
    ASSERT_EQ(cal.run_until(slice), heap.run_until(slice));
    ASSERT_EQ(cal.pending(), heap.pending());
    ASSERT_EQ(cal.run(), heap.run());
    ASSERT_EQ(cal_done, heap_done);
    // Exactly one member of each trio fires; nothing may be stranded.
    ASSERT_EQ(cal_done, 16 * (round + 1));
    ASSERT_TRUE(cal.empty());
    ASSERT_EQ(cal.pending(), 0u);
  }
}

// Events placed exactly on bucket and year boundaries, with run_until
// targets exactly on those edges: boundary events must fire on the slice
// that includes their time, never one early or one late.
TEST(CalendarQueue, RunUntilAtExactBucketEdges) {
  EventQueue cal(EventKernel::kCalendar);
  EventQueue heap(EventKernel::kHeap);
  const double w = EventQueue::kInitialBucketWidthMs;
  const double year = w * static_cast<double>(EventQueue::kMinBuckets);
  std::vector<double> cal_fired, heap_fired;
  for (int i = 0; i < 200; ++i) {
    // On-edge, just-below, just-above, and year-edge times.
    const double base = static_cast<double>(i) * w;
    for (double t : {base, base + w * 0.5, base + w - 1e-9,
                     static_cast<double>(i) * year}) {
      cal.schedule_at(t, [&cal_fired, &cal] { cal_fired.push_back(cal.now()); });
      heap.schedule_at(t,
                       [&heap_fired, &heap] { heap_fired.push_back(heap.now()); });
    }
  }
  // Advance in slices that land exactly on bucket edges.
  for (int edge = 1; edge <= 220; ++edge) {
    const double until = static_cast<double>(edge) * w;
    ASSERT_EQ(cal.run_until(until), heap.run_until(until)) << edge;
    ASSERT_EQ(cal.now(), until);
    ASSERT_EQ(cal_fired, heap_fired) << edge;
    // Everything due has fired: nothing pending at or before `until`.
    for (double t : cal_fired) ASSERT_LE(t, until);
  }
  ASSERT_EQ(cal.run(), heap.run());
  ASSERT_EQ(cal_fired, heap_fired);
  ASSERT_TRUE(cal.empty());
}

// Far-future scheduling exercises the ladder and the year jump: after the
// near-future population drains, the calendar must jump straight to the
// ladder minimum (not walk year by year) and keep ordering exact.
TEST(CalendarQueue, LadderJumpAcrossHugeGaps) {
  EventQueue cal(EventKernel::kCalendar);
  EventQueue heap(EventKernel::kHeap);
  std::vector<int> cal_order, heap_order;
  // Clusters separated by gaps spanning millions of initial years.
  const double gaps[] = {0.0, 1e3, 1e6, 1e9, 1e12};
  int tag = 0;
  for (double gap : gaps) {
    for (int i = 0; i < 10; ++i) {
      const int t = tag++;
      const double at = gap + 0.25 * static_cast<double>(i);
      cal.schedule_at(at, [&cal_order, t] { cal_order.push_back(t); });
      heap.schedule_at(at, [&heap_order, t] { heap_order.push_back(t); });
    }
  }
  ASSERT_EQ(cal.run(), heap.run());
  ASSERT_EQ(cal_order, heap_order);
  ASSERT_EQ(cal.now(), heap.now());
  ASSERT_EQ(cal_order.size(), 50u);
}

// A callback that schedules earlier than the rest of an in-flight batch
// must preempt it (dirty-batch spill path in run()).
TEST(CalendarQueue, MidBatchInsertPreemptsLaterBatchEntries) {
  for (EventKernel k : {EventKernel::kCalendar, EventKernel::kHeap}) {
    EventQueue eq(k);
    std::vector<std::string> order;
    // Three events in one bucket; the first schedules a fourth between
    // the second and third.
    eq.schedule_at(0.10, [&] {
      order.push_back("a");
      eq.schedule_at(0.25, [&] { order.push_back("inserted"); });
    });
    eq.schedule_at(0.20, [&] { order.push_back("b"); });
    eq.schedule_at(0.30, [&] { order.push_back("c"); });
    eq.run();
    ASSERT_EQ(order.size(), 4u) << to_string(k);
    EXPECT_EQ(order[0], "a");
    EXPECT_EQ(order[1], "b");
    EXPECT_EQ(order[2], "inserted");
    EXPECT_EQ(order[3], "c");
  }
}

// Equal-time events keep schedule-order FIFO even when one of them is
// scheduled from inside the dispatch of the same instant.
TEST(CalendarQueue, EqualTimeFifoAcrossMidDispatchInsert) {
  for (EventKernel k : {EventKernel::kCalendar, EventKernel::kHeap}) {
    EventQueue eq(k);
    std::vector<int> order;
    eq.schedule_at(1.0, [&] {
      order.push_back(0);
      eq.schedule_at(1.0, [&] { order.push_back(2); });  // same instant
    });
    eq.schedule_at(1.0, [&] { order.push_back(1); });
    eq.run();
    ASSERT_EQ(order, (std::vector<int>{0, 1, 2})) << to_string(k);
  }
}

}  // namespace
}  // namespace raidsim
