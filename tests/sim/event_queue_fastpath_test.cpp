// Regression suite for the indexed-heap event kernel internals: FIFO
// tie-break determinism under slot reuse, cancel-then-reschedule id
// semantics, run_until boundary behaviour, and a randomized differential
// test against a naive reference queue.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace raidsim {
namespace {

TEST(EventQueueFastPath, IdsAreNeverZeroAndNeverRepeat) {
  EventQueue eq;
  std::vector<EventId> ids;
  // Churn through cancels and executions so slots are heavily reused.
  for (int round = 0; round < 50; ++round) {
    const EventId a = eq.schedule_at(round, [] {});
    const EventId b = eq.schedule_at(round, [] {});
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    ids.push_back(a);
    ids.push_back(b);
    eq.cancel(a);
    eq.step();
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(EventQueueFastPath, CancelThenRescheduleReusesSlotSafely) {
  EventQueue eq;
  bool first_ran = false;
  bool second_ran = false;
  const EventId first = eq.schedule_at(1.0, [&] { first_ran = true; });
  ASSERT_TRUE(eq.cancel(first));
  // The replacement most likely occupies the recycled slot; the stale id
  // must keep referring to the dead event, not the new occupant.
  const EventId second = eq.schedule_at(1.0, [&] { second_ran = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(eq.cancel(first));
  eq.run();
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);
}

TEST(EventQueueFastPath, StaleIdAfterExecutionCannotCancelNewOccupant) {
  EventQueue eq;
  const EventId first = eq.schedule_at(1.0, [] {});
  eq.run();
  bool ran = false;
  eq.schedule_at(2.0, [&] { ran = true; });
  EXPECT_FALSE(eq.cancel(first));  // executed id, slot since reused
  eq.run();
  EXPECT_TRUE(ran);
}

TEST(EventQueueFastPath, FifoTieBreakSurvivesSlotReuse) {
  EventQueue eq;
  std::vector<int> order;
  // Fill and drain once so the free list is primed and later schedules
  // reuse slots out of address order.
  for (int i = 0; i < 8; ++i) eq.schedule_at(0.0, [] {});
  eq.run();
  for (int i = 0; i < 32; ++i)
    eq.schedule_at(5.0, [&order, i] { order.push_back(i); });
  eq.run();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueFastPath, RunUntilExecutesBoundaryAndAdvancesClock) {
  EventQueue eq;
  int at_boundary = 0;
  int beyond = 0;
  eq.schedule_at(2.0, [&] { ++at_boundary; });
  eq.schedule_at(2.0, [&] { ++at_boundary; });
  eq.schedule_at(2.0 + 1e-9, [&] { ++beyond; });
  EXPECT_EQ(eq.run_until(2.0), 2u);
  EXPECT_EQ(at_boundary, 2);
  EXPECT_EQ(beyond, 0);
  EXPECT_EQ(eq.now(), 2.0);
  EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueueFastPath, RunUntilOnEmptyQueueStillAdvances) {
  EventQueue eq;
  EXPECT_EQ(eq.run_until(7.5), 0u);
  EXPECT_EQ(eq.now(), 7.5);
}

TEST(EventQueueFastPath, HeavyCancelKeepsPendingExact) {
  EventQueue eq;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(eq.schedule_at(i, [] {}));
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(eq.cancel(ids[i]));
  EXPECT_EQ(eq.pending(), 50u);
  EXPECT_EQ(eq.run(), 50u);
  EXPECT_TRUE(eq.empty());
}

// ---------------------------------------------------------------------
// Randomized differential test: the kernel against a naive reference
// queue (linear scan for the earliest (time, schedule-ordinal) pair).

class ReferenceQueue {
 public:
  double now() const { return now_; }

  int schedule_at(double when, int ordinal) {
    if (when < now_) when = now_;
    events_.push_back(Event{when, seq_++, ordinal, true});
    return ordinal;
  }

  bool cancel(int ordinal) {
    for (auto& e : events_) {
      if (e.live && e.ordinal == ordinal) {
        e.live = false;
        return true;
      }
    }
    return false;
  }

  /// Pop the next live event's ordinal, advancing the clock.
  std::optional<int> step() {
    Event* best = nullptr;
    for (auto& e : events_) {
      if (!e.live) continue;
      if (!best || e.time < best->time ||
          (e.time == best->time && e.seq < best->seq))
        best = &e;
    }
    if (!best) return std::nullopt;
    now_ = best->time;
    best->live = false;
    return best->ordinal;
  }

  std::size_t pending() const {
    std::size_t n = 0;
    for (const auto& e : events_) n += e.live ? 1 : 0;
    return n;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    int ordinal;
    bool live;
  };
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::vector<Event> events_;
};

TEST(EventQueueFastPath, DifferentialAgainstNaiveReference) {
  Rng rng(20260805);
  EventQueue eq;
  ReferenceQueue ref;

  std::vector<int> eq_fired;   // schedule ordinals, in execution order
  std::vector<int> ref_fired;
  std::vector<std::pair<int, EventId>> live;  // (ordinal, kernel id)
  int next_ordinal = 0;

  for (int op = 0; op < 20000; ++op) {
    const double p = rng.uniform();
    if (p < 0.45 || live.empty()) {
      // Coarse times force plenty of exact ties.
      const double when = eq.now() + rng.uniform_i64(0, 8);
      const int ordinal = next_ordinal++;
      const EventId id =
          eq.schedule_at(when, [&eq_fired, ordinal] {
            eq_fired.push_back(ordinal);
          });
      ref.schedule_at(when, ordinal);
      live.push_back({ordinal, id});
    } else if (p < 0.65) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_u64(live.size()));
      const auto [ordinal, id] = live[pick];
      EXPECT_EQ(eq.cancel(id), ref.cancel(ordinal));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const bool stepped = eq.step();
      const auto popped = ref.step();
      ASSERT_EQ(stepped, popped.has_value());
      if (popped) {
        ASSERT_FALSE(eq_fired.empty());
        EXPECT_EQ(eq_fired.back(), *popped);
        ref_fired.push_back(*popped);
        std::erase_if(live, [o = *popped](const auto& entry) {
          return entry.first == o;
        });
        EXPECT_EQ(eq.now(), ref.now());
      }
    }
    EXPECT_EQ(eq.pending(), ref.pending());
  }

  // Drain both completely and compare the full execution order.
  while (true) {
    const bool stepped = eq.step();
    const auto popped = ref.step();
    ASSERT_EQ(stepped, popped.has_value());
    if (!popped) break;
    ref_fired.push_back(*popped);
    EXPECT_EQ(eq.now(), ref.now());
  }
  EXPECT_EQ(eq_fired, ref_fired);
}

}  // namespace
}  // namespace raidsim
