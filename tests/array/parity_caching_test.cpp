#include <gtest/gtest.h>

#include "array/cached_controller.hpp"

namespace raidsim {
namespace {

class ParityCachingTest : public ::testing::Test {
 protected:
  ArrayController::Config config(int n = 4) {
    ArrayController::Config cfg;
    cfg.layout.organization = Organization::kRaid4;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 1800;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  CachedController::CacheConfig cache_config(std::int64_t blocks = 64) {
    CachedController::CacheConfig cfg;
    cfg.cache_bytes = blocks * 4096;
    cfg.destage_period_ms = 50.0;
    cfg.parity_caching = true;
    return cfg;
  }

  void run_write(CachedController& c, EventQueue& eq, std::int64_t block,
                 int count = 1) {
    bool done = false;
    c.submit(ArrayRequest{block, count, true}, [&](SimTime) { done = true; });
    while (!done && eq.step()) {
    }
    EXPECT_TRUE(done);
  }

  void drain(CachedController& c, EventQueue& eq) {
    eq.run_until(eq.now() + 5000.0);
    c.shutdown();
    eq.run();
  }
};

TEST_F(ParityCachingTest, RequiresRaid4) {
  EventQueue eq;
  auto cfg = config();
  cfg.layout.organization = Organization::kRaid5;
  EXPECT_THROW(CachedController(eq, cfg, cache_config()),
               std::invalid_argument);
}

TEST_F(ParityCachingTest, ParityUpdatesSpooledToParityDisk) {
  EventQueue eq;
  CachedController c(eq, config(), cache_config());
  run_write(c, eq, 5);
  drain(c, eq);
  EXPECT_EQ(c.stats().parity_spools, 1u);
  EXPECT_EQ(c.parity_queue_length(), 0u);
  EXPECT_EQ(c.cache().parity_slots(), 0u);  // released after spooling
  // N=4: the parity disk is index 4; the delta entry is an RMW there.
  EXPECT_EQ(c.disks()[4]->stats().rmws, 1u);
  // The data destage was an RMW too (write miss: no old copy).
  EXPECT_EQ(c.disks()[0]->stats().rmws + c.disks()[1]->stats().rmws +
                c.disks()[2]->stats().rmws + c.disks()[3]->stats().rmws,
            1u);
}

TEST_F(ParityCachingTest, FullStripeParityWrittenWithoutRead) {
  EventQueue eq;
  CachedController c(eq, config(), cache_config());
  run_write(c, eq, 0, 4);  // full row (N=4, unit 1)
  drain(c, eq);
  EXPECT_EQ(c.disks()[4]->stats().writes, 1u);  // plain parity write
  EXPECT_EQ(c.disks()[4]->stats().rmws, 0u);
}

TEST_F(ParityCachingTest, UpdatesToSameParityBlockCoalesce) {
  EventQueue eq;
  auto cache_cfg = cache_config();
  cache_cfg.destage_period_ms = 400.0;  // let several writes accumulate
  CachedController c(eq, config(), cache_cfg);
  // Three writes in the same stripe row but different columns share one
  // parity block. They destage in the same round; their deltas coalesce
  // when a spool entry is still pending.
  run_write(c, eq, 0);
  run_write(c, eq, 1);
  run_write(c, eq, 2);
  drain(c, eq);
  EXPECT_GE(c.stats().parity_spools, 1u);
  EXPECT_LE(c.stats().parity_spools, 3u);
  EXPECT_EQ(c.parity_queue_length(), 0u);
  EXPECT_EQ(c.cache().parity_slots(), 0u);
}

TEST_F(ParityCachingTest, TinyCacheStallsReservationAndRecovers) {
  EventQueue eq;
  // 2-block cache: a dirty block plus its pending parity cannot both fit
  // alongside further dirty blocks, forcing reservation failures.
  CachedController c(eq, config(), cache_config(2));
  for (int i = 0; i < 6; ++i) run_write(c, eq, i * 10);
  drain(c, eq);
  // Reservations failed at least once, the fallback serviced parity
  // directly from disk, and everything still reached the disks.
  EXPECT_GE(c.stats().parity_reservation_failures, 1u);
  EXPECT_EQ(c.cache().dirty_count(), 0u);
  EXPECT_EQ(c.parity_queue_length(), 0u);
}

TEST_F(ParityCachingTest, SpoolerDrainsInScanOrder) {
  EventQueue eq;
  auto cache_cfg = cache_config();
  cache_cfg.destage_period_ms = 400.0;
  CachedController c(eq, config(), cache_cfg);
  // Writes to three different rows -> three distinct parity blocks.
  run_write(c, eq, 0);    // row 0
  run_write(c, eq, 40);   // row 10
  run_write(c, eq, 80);   // row 20
  drain(c, eq);
  EXPECT_EQ(c.stats().parity_spools, 3u);
  EXPECT_EQ(c.disks()[4]->stats().rmws, 3u);
}

TEST_F(ParityCachingTest, PeakQueueTracked) {
  EventQueue eq;
  auto cache_cfg = cache_config();
  cache_cfg.destage_period_ms = 400.0;
  CachedController c(eq, config(), cache_cfg);
  run_write(c, eq, 0);
  run_write(c, eq, 400);
  drain(c, eq);
  EXPECT_GE(c.stats().parity_queue_peak, 1u);
}

}  // namespace
}  // namespace raidsim
