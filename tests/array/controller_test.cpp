#include "array/controller.hpp"

#include <gtest/gtest.h>

#include "array/uncached_controller.hpp"

namespace raidsim {
namespace {

TEST(Barrier, FiresAfterAllArrivals) {
  OpArena arena(OpAlloc::kArena);
  double fired_at = -1.0;
  auto barrier = Barrier::create(arena, 3, [&](SimTime t) { fired_at = t; });
  barrier->arrive(1.0);
  barrier->arrive(2.0);
  EXPECT_EQ(fired_at, -1.0);
  barrier->arrive(3.5);
  EXPECT_EQ(fired_at, 3.5);
}

TEST(Barrier, ExpectAddsArrivals) {
  OpArena arena(OpAlloc::kArena);
  int fired = 0;
  auto barrier = Barrier::create(arena, 1, [&](SimTime) { ++fired; });
  barrier->expect(1);
  barrier->arrive(1.0);
  EXPECT_EQ(fired, 0);
  barrier->arrive(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(SyncPolicy, Names) {
  EXPECT_EQ(to_string(SyncPolicy::kSimultaneousIssue), "SI");
  EXPECT_EQ(to_string(SyncPolicy::kReadFirst), "RF");
  EXPECT_EQ(to_string(SyncPolicy::kReadFirstPriority), "RF/PR");
  EXPECT_EQ(to_string(SyncPolicy::kDiskFirst), "DF");
  EXPECT_EQ(to_string(SyncPolicy::kDiskFirstPriority), "DF/PR");
}

class ControllerFixture : public ::testing::Test {
 protected:
  ArrayController::Config config(Organization org, int n = 4) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 1800;  // 10 cylinders worth
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }
};

TEST_F(ControllerFixture, BuildsComponentsToMatchLayout) {
  EventQueue eq;
  UncachedController base(eq, config(Organization::kBase));
  EXPECT_EQ(base.disks().size(), 4u);
  EXPECT_EQ(base.buffers().capacity(), 20);  // 5 per disk

  UncachedController mirror(eq, config(Organization::kMirror));
  EXPECT_EQ(mirror.disks().size(), 8u);

  UncachedController raid5(eq, config(Organization::kRaid5));
  EXPECT_EQ(raid5.disks().size(), 5u);
}

TEST_F(ControllerFixture, SeekModelCalibratedFromConfig) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kBase));
  EXPECT_NEAR(c.seek_model().average_over_uniform(), 11.2, 1e-9);
}

}  // namespace
}  // namespace raidsim
