#include "array/cached_controller.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

class CachedTest : public ::testing::Test {
 protected:
  ArrayController::Config config(Organization org, int n = 4) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 1800;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  CachedController::CacheConfig cache_config(std::int64_t blocks = 64) {
    CachedController::CacheConfig cfg;
    cfg.cache_bytes = blocks * 4096;
    cfg.destage_period_ms = 50.0;
    return cfg;
  }

  double run_request(CachedController& controller, EventQueue& eq,
                     std::int64_t block, int count, bool write) {
    double done = -1.0;
    controller.submit(ArrayRequest{block, count, write},
                      [&](SimTime t) { done = t; });
    // Step precisely until the response, leaving background work pending.
    while (done < 0.0 && eq.step()) {
    }
    EXPECT_GE(done, 0.0);
    return done;
  }

  void drain(CachedController& controller, EventQueue& eq) {
    eq.run_until(eq.now() + 5000.0);
    controller.shutdown();
    eq.run();
  }
};

TEST_F(CachedTest, WriteCompletesAtChannelSpeed) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kBase), cache_config());
  const double done = run_request(c, eq, 5, 1, true);
  // 4 KB over 10 MB/s: the response is just the channel transfer.
  EXPECT_NEAR(done, 0.4096, 1e-9);
  drain(c, eq);
}

TEST_F(CachedTest, ReadHitServedFromCache) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kBase), cache_config());
  run_request(c, eq, 5, 1, true);            // populate
  const double start = eq.now();
  const double done = run_request(c, eq, 5, 1, false);
  EXPECT_NEAR(done - start, 0.4096, 1e-9);   // no disk access
  EXPECT_EQ(c.stats().read_request_hits, 1u);
  EXPECT_EQ(c.cache().stats().read_hits, 1u);
  drain(c, eq);
}

TEST_F(CachedTest, ReadMissFetchesAndCaches) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kBase), cache_config());
  const double done = run_request(c, eq, 7, 1, false);
  EXPECT_GT(done, 1.0);  // had to visit the disk
  EXPECT_EQ(c.stats().read_request_hits, 0u);
  EXPECT_TRUE(c.cache().contains(7));
  EXPECT_EQ(c.disks()[0]->stats().reads, 1u);
  drain(c, eq);
}

TEST_F(CachedTest, DestageWritesDirtyBlocksBack) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kBase), cache_config());
  run_request(c, eq, 5, 1, true);
  EXPECT_EQ(c.cache().dirty_count(), 1u);
  eq.run_until(eq.now() + 500.0);  // several destage periods
  EXPECT_EQ(c.cache().dirty_count(), 0u);
  EXPECT_EQ(c.disks()[0]->stats().writes, 1u);
  EXPECT_GE(c.stats().destage_blocks, 1u);
  drain(c, eq);
}

TEST_F(CachedTest, DestageGroupsConsecutiveBlocks) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kBase), cache_config());
  // Dirty 8 consecutive blocks; they should destage as one disk write.
  for (int i = 0; i < 8; ++i) run_request(c, eq, 100 + i, 1, true);
  eq.run_until(eq.now() + 500.0);
  EXPECT_EQ(c.cache().dirty_count(), 0u);
  EXPECT_EQ(c.disks()[0]->stats().writes, 1u);
  EXPECT_EQ(c.stats().destage_blocks, 8u);
  drain(c, eq);
}

TEST_F(CachedTest, MultiblockHitRequiresAllBlocks) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kBase), cache_config());
  run_request(c, eq, 10, 1, true);
  run_request(c, eq, 11, 1, true);
  // Blocks 10-12: 12 is missing -> request is a miss.
  run_request(c, eq, 10, 3, false);
  EXPECT_EQ(c.stats().read_request_hits, 0u);
  // Now everything is cached.
  run_request(c, eq, 10, 3, false);
  EXPECT_EQ(c.stats().read_request_hits, 1u);
  drain(c, eq);
}

TEST_F(CachedTest, OldDataRetentionAvoidsDataDiskRmw) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kRaid5), cache_config());
  // Read then write the same block: the old copy is captured, so the
  // destage performs a plain data write; only the parity disk pays the
  // read-modify-write rotation (Section 3.4).
  run_request(c, eq, 5, 1, false);
  run_request(c, eq, 5, 1, true);
  eq.run_until(eq.now() + 500.0);
  std::uint64_t rmws = 0, writes = 0;
  for (const auto& disk : c.disks()) {
    rmws += disk->stats().rmws;
    writes += disk->stats().writes;
  }
  EXPECT_EQ(writes, 1u);  // plain data write
  EXPECT_EQ(rmws, 1u);    // parity only
  drain(c, eq);
}

TEST_F(CachedTest, WriteMissDestageFallsBackToRmw) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kRaid5), cache_config());
  run_request(c, eq, 5, 1, true);  // write miss: no old copy
  eq.run_until(eq.now() + 500.0);
  std::uint64_t rmws = 0, writes = 0;
  for (const auto& disk : c.disks()) {
    rmws += disk->stats().rmws;
    writes += disk->stats().writes;
  }
  EXPECT_EQ(rmws, 2u);  // data and parity both read-modify-write
  EXPECT_EQ(writes, 0u);
  drain(c, eq);
}

TEST_F(CachedTest, RetentionDisabledAlwaysRmws) {
  EventQueue eq;
  auto cache_cfg = cache_config();
  cache_cfg.retain_old_data = false;  // ablation switch
  CachedController c(eq, config(Organization::kRaid5), cache_cfg);
  run_request(c, eq, 5, 1, false);
  run_request(c, eq, 5, 1, true);
  eq.run_until(eq.now() + 500.0);
  std::uint64_t rmws = 0;
  for (const auto& disk : c.disks()) rmws += disk->stats().rmws;
  EXPECT_EQ(rmws, 2u);
  drain(c, eq);
}

TEST_F(CachedTest, PureLruModeWritesBackOnlyOnEviction) {
  EventQueue eq;
  auto cache_cfg = cache_config(4);  // tiny cache
  cache_cfg.periodic_destage = false;
  CachedController c(eq, config(Organization::kBase), cache_cfg);
  run_request(c, eq, 5, 1, true);
  eq.run_until(eq.now() + 500.0);
  EXPECT_EQ(c.cache().dirty_count(), 1u);  // nothing destages it
  // Fill the cache with reads until block 5 is evicted.
  for (int i = 0; i < 6; ++i) run_request(c, eq, 200 + i * 3, 1, false);
  eq.run_until(eq.now() + 500.0);
  EXPECT_GT(c.stats().sync_victim_writes, 0u);
  EXPECT_EQ(c.disks()[0]->stats().writes, 1u);
  drain(c, eq);
}

TEST_F(CachedTest, MirrorDestageWritesBothCopies) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kMirror), cache_config());
  run_request(c, eq, 5, 1, true);
  eq.run_until(eq.now() + 500.0);
  EXPECT_EQ(c.disks()[0]->stats().writes, 1u);
  EXPECT_EQ(c.disks()[1]->stats().writes, 1u);
  drain(c, eq);
}

TEST_F(CachedTest, RedirtiedBlockDestagesAgain) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kBase), cache_config());
  run_request(c, eq, 5, 1, true);
  eq.run_until(eq.now() + 500.0);
  EXPECT_EQ(c.cache().dirty_count(), 0u);
  run_request(c, eq, 5, 1, true);
  eq.run_until(eq.now() + 500.0);
  EXPECT_EQ(c.cache().dirty_count(), 0u);
  EXPECT_EQ(c.disks()[0]->stats().writes, 2u);
  drain(c, eq);
}

TEST_F(CachedTest, ShutdownStopsDestageTimer) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kBase), cache_config());
  c.shutdown();
  eq.run();  // must terminate: no periodic tick remains
  EXPECT_TRUE(eq.empty());
}

}  // namespace
}  // namespace raidsim
