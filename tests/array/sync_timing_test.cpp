// Deterministic timing relations between synchronization policies for an
// isolated small write on an idle RAID5 array (no queueing): the policy
// only changes WHEN the parity access is issued, so the orderings are
// exact, not statistical.
#include <gtest/gtest.h>

#include "array/uncached_controller.hpp"

namespace raidsim {
namespace {

double isolated_write_response(SyncPolicy sync) {
  EventQueue eq;
  ArrayController::Config cfg;
  cfg.layout.organization = Organization::kRaid5;
  cfg.layout.data_disks = 4;
  cfg.layout.data_blocks_per_disk = 1800;
  cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
  cfg.sync = sync;
  UncachedController c(eq, cfg);
  double done = -1.0;
  c.submit(ArrayRequest{0, 1, true}, [&](SimTime t) { done = t; });
  eq.run();
  return done;
}

TEST(SyncTiming, ReadFirstNoFasterThanDiskFirst) {
  // DF issues the parity access when the data access acquires its disk;
  // RF waits for the old-data read to finish first. On an idle array the
  // parity disk is free either way, so issuing earlier can only help.
  EXPECT_LE(isolated_write_response(SyncPolicy::kDiskFirst),
            isolated_write_response(SyncPolicy::kReadFirst));
}

TEST(SyncTiming, PriorityIrrelevantWithoutContention) {
  // With empty queues, the /PR variants change nothing.
  EXPECT_DOUBLE_EQ(isolated_write_response(SyncPolicy::kReadFirst),
                   isolated_write_response(SyncPolicy::kReadFirstPriority));
  EXPECT_DOUBLE_EQ(isolated_write_response(SyncPolicy::kDiskFirst),
                   isolated_write_response(SyncPolicy::kDiskFirstPriority));
}

TEST(SyncTiming, SimultaneousIssueMatchesDiskFirstWhenIdle) {
  // On an idle array the data access acquires its disk immediately, so
  // SI and DF issue the parity at the same instant.
  EXPECT_DOUBLE_EQ(isolated_write_response(SyncPolicy::kSimultaneousIssue),
                   isolated_write_response(SyncPolicy::kDiskFirst));
}

TEST(SyncTiming, QueuedDataDiskSeparatesSiFromDiskFirst) {
  // Queue reads on the data disk first: SI's parity access spins through
  // held rotations waiting for the old data; DF's parity is issued late
  // enough to avoid most of the holding. SI must burn at least as many
  // held rotations.
  auto run = [](SyncPolicy sync) {
    EventQueue eq;
    ArrayController::Config cfg;
    cfg.layout.organization = Organization::kRaid5;
    cfg.layout.data_disks = 4;
    cfg.layout.data_blocks_per_disk = 1800;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    cfg.sync = sync;
    UncachedController c(eq, cfg);
    for (int i = 0; i < 4; ++i) c.submit(ArrayRequest{0, 1, false}, nullptr);
    c.submit(ArrayRequest{0, 1, true}, nullptr);
    eq.run();
    std::uint64_t held = 0;
    for (const auto& d : c.disks()) held += d->stats().held_rotations;
    return held;
  };
  EXPECT_GT(run(SyncPolicy::kSimultaneousIssue), run(SyncPolicy::kDiskFirst));
}

}  // namespace
}  // namespace raidsim
