#include "array/parity_spool.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>

namespace raidsim {
namespace {

TEST(FlatSpool, InsertFindPop) {
  FlatSpool<std::string> spool;
  EXPECT_TRUE(spool.empty());
  spool.insert(30, "c");
  spool.insert(10, "a");
  spool.insert(20, "b");
  EXPECT_EQ(spool.size(), 3u);
  ASSERT_NE(spool.find(20), nullptr);
  EXPECT_EQ(*spool.find(20), "b");
  EXPECT_EQ(spool.find(25), nullptr);

  auto p = spool.pop_at_or_after(15);
  EXPECT_EQ(p.key, 20);
  EXPECT_EQ(p.value, "b");
  EXPECT_EQ(spool.find(20), nullptr);
  EXPECT_EQ(spool.size(), 2u);
}

TEST(FlatSpool, PopWrapsLikeScan) {
  FlatSpool<int> spool;
  spool.insert(5, 50);
  spool.insert(9, 90);
  // Nothing at or after 10: SCAN wraps to the smallest key.
  auto p = spool.pop_at_or_after(10);
  EXPECT_EQ(p.key, 5);
  EXPECT_EQ(p.value, 50);
  p = spool.pop_at_or_after(10);
  EXPECT_EQ(p.key, 9);
  EXPECT_TRUE(spool.empty());
}

TEST(FlatSpool, SlotsAreRecycled) {
  FlatSpool<int> spool;
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 100; ++k) spool.insert(k, k * 10);
    for (int k = 0; k < 100; ++k) {
      auto p = spool.pop_at_or_after(k);
      EXPECT_EQ(p.key, k);
      EXPECT_EQ(p.value, k * 10);
    }
    EXPECT_TRUE(spool.empty());
  }
}

// Differential check against std::map (the structure FlatSpool replaced
// in CachedController): a random insert / coalesce-find / SCAN-pop
// interleaving must stay behavior-identical.
TEST(FlatSpool, DifferentialVsMap) {
  FlatSpool<int> spool;
  std::map<std::int64_t, int> ref;
  std::mt19937 rng(7);
  for (int step = 0; step < 5000; ++step) {
    const std::int64_t key = static_cast<std::int64_t>(rng() % 200);
    switch (rng() % 3) {
      case 0: {  // insert-or-coalesce, mirroring add_spool_entry
        int* hit = spool.find(key);
        auto it = ref.find(key);
        ASSERT_EQ(hit != nullptr, it != ref.end());
        if (hit) {
          *hit += 1;
          it->second += 1;
        } else {
          spool.insert(key, int{step});
          ref.emplace(key, step);
        }
        break;
      }
      case 1: {  // SCAN pop from a random position, wrapping
        if (ref.empty()) break;
        auto popped = spool.pop_at_or_after(key);
        auto it = ref.lower_bound(key);
        if (it == ref.end()) it = ref.begin();
        ASSERT_EQ(popped.key, it->first);
        ASSERT_EQ(popped.value, it->second);
        ref.erase(it);
        break;
      }
      default: {  // point lookup
        int* hit = spool.find(key);
        auto it = ref.find(key);
        ASSERT_EQ(hit != nullptr, it != ref.end());
        if (hit) {
          ASSERT_EQ(*hit, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(spool.size(), ref.size());
  }
  spool.clear();
  EXPECT_TRUE(spool.empty());
  EXPECT_EQ(spool.size(), 0u);
}

}  // namespace
}  // namespace raidsim
