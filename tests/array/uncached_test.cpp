#include "array/uncached_controller.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

class UncachedTest : public ::testing::Test {
 protected:
  ArrayController::Config config(Organization org, int n = 4,
                                 SyncPolicy sync = SyncPolicy::kDiskFirst) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 1800;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    cfg.sync = sync;
    return cfg;
  }

  double run_request(UncachedController& controller, EventQueue& eq,
                     std::int64_t block, int count, bool write) {
    double done = -1.0;
    controller.submit(ArrayRequest{block, count, write},
                      [&](SimTime t) { done = t; });
    eq.run();
    EXPECT_GE(done, 0.0);
    return done;
  }
};

TEST_F(UncachedTest, BaseReadTimingIsDiskPlusChannel) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kBase));
  const double done = run_request(c, eq, 0, 1, false);
  const auto& geo = c.disks()[0]->geometry();
  // Block 0 at t=0: no seek, no latency, 8-sector transfer, then 4 KB on
  // a 10 MB/s channel.
  EXPECT_NEAR(done, 8.0 * geo.sector_time_ms() + 0.4096, 1e-9);
  EXPECT_EQ(c.stats().read_requests, 1u);
}

TEST_F(UncachedTest, BaseWritePaysChannelThenDisk) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kBase));
  const double done = run_request(c, eq, 0, 1, true);
  const auto& geo = c.disks()[0]->geometry();
  // Channel first (0.4096 ms), then the disk write with whatever
  // rotational latency has accumulated.
  EXPECT_GT(done, 0.4096 + 8.0 * geo.sector_time_ms() - 1e-9);
  EXPECT_EQ(c.disks()[0]->stats().writes, 1u);
  EXPECT_EQ(c.stats().write_requests, 1u);
}

TEST_F(UncachedTest, MirrorWritesBothCopies) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kMirror));
  run_request(c, eq, 0, 1, true);
  EXPECT_EQ(c.disks()[0]->stats().writes, 1u);
  EXPECT_EQ(c.disks()[1]->stats().writes, 1u);
}

TEST_F(UncachedTest, MirrorReadUsesOneCopy) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kMirror));
  run_request(c, eq, 0, 1, false);
  EXPECT_EQ(c.disks()[0]->stats().reads + c.disks()[1]->stats().reads, 1u);
}

TEST_F(UncachedTest, MirrorReadPicksNearerArm) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kMirror));
  // Park disk 0's arm far away by reading a far block from it first.
  // Logical 900 (cylinder 5) maps to primary disk 0.
  run_request(c, eq, 900, 1, false);
  const bool disk0_far = c.disks()[0]->current_cylinder() > 0;
  ASSERT_TRUE(disk0_far);
  // Now read logical 0 (cylinder 0): the twin (disk 1, still at
  // cylinder 0) must serve it.
  run_request(c, eq, 0, 1, false);
  EXPECT_EQ(c.disks()[1]->stats().reads, 1u);
}

TEST_F(UncachedTest, Raid5SmallWriteDoesTwoRmws) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  run_request(c, eq, 0, 1, true);
  std::uint64_t rmws = 0, writes = 0;
  for (const auto& disk : c.disks()) {
    rmws += disk->stats().rmws;
    writes += disk->stats().writes;
  }
  EXPECT_EQ(rmws, 2u);  // old data + old parity are both read in place
  EXPECT_EQ(writes, 0u);
}

TEST_F(UncachedTest, Raid5SmallWriteSlowerThanBaseWrite) {
  EventQueue eq1, eq2;
  UncachedController base(eq1, config(Organization::kBase));
  UncachedController raid5(eq2, config(Organization::kRaid5));
  const double base_time = run_request(base, eq1, 0, 1, true);
  const double raid5_time = run_request(raid5, eq2, 0, 1, true);
  // The write penalty: at least one extra revolution.
  EXPECT_GT(raid5_time, base_time + 10.0);
}

TEST_F(UncachedTest, Raid5FullStripeWritePlainWrites) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  run_request(c, eq, 0, 4, true);  // N=4, unit=1: one full row
  std::uint64_t rmws = 0, writes = 0, reads = 0;
  for (const auto& disk : c.disks()) {
    rmws += disk->stats().rmws;
    writes += disk->stats().writes;
    reads += disk->stats().reads;
  }
  EXPECT_EQ(rmws, 0u);
  EXPECT_EQ(reads, 0u);
  EXPECT_EQ(writes, 5u);  // 4 data + 1 parity
}

TEST_F(UncachedTest, Raid5ReconstructWriteReadsUntouchedColumns) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  run_request(c, eq, 0, 2, true);  // half the stripe
  std::uint64_t rmws = 0, writes = 0, reads = 0;
  for (const auto& disk : c.disks()) {
    rmws += disk->stats().rmws;
    writes += disk->stats().writes;
    reads += disk->stats().reads;
  }
  EXPECT_EQ(rmws, 0u);
  EXPECT_EQ(reads, 2u);   // the two untouched columns
  EXPECT_EQ(writes, 3u);  // 2 data + 1 parity
}

TEST_F(UncachedTest, ParityStripingSmallWriteDoesTwoRmws) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kParityStriping));
  run_request(c, eq, 0, 1, true);
  std::uint64_t rmws = 0;
  for (const auto& disk : c.disks()) rmws += disk->stats().rmws;
  EXPECT_EQ(rmws, 2u);
}

class SyncPolicyTest : public UncachedTest,
                       public ::testing::WithParamInterface<SyncPolicy> {};

TEST_P(SyncPolicyTest, SmallWriteCompletesUnderEveryPolicy) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5, 4, GetParam()));
  const double done = run_request(c, eq, 7, 1, true);
  EXPECT_GT(done, 0.0);
  std::uint64_t rmws = 0;
  for (const auto& disk : c.disks()) rmws += disk->stats().rmws;
  EXPECT_EQ(rmws, 2u);
}

TEST_P(SyncPolicyTest, ManyConcurrentWritesAllComplete) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5, 4, GetParam()));
  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    c.submit(ArrayRequest{i * 37 % 7000, 1, true},
             [&](SimTime) { ++completed; });
  }
  eq.run();
  EXPECT_EQ(completed, 40);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SyncPolicyTest,
                         ::testing::Values(SyncPolicy::kSimultaneousIssue,
                                           SyncPolicy::kReadFirst,
                                           SyncPolicy::kReadFirstPriority,
                                           SyncPolicy::kDiskFirst,
                                           SyncPolicy::kDiskFirstPriority),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           name.erase(std::remove(name.begin(), name.end(), '/'),
                                      name.end());
                           return name;
                         });

TEST_F(UncachedTest, SimultaneousIssueHoldsParityDisk) {
  // Make the data disk busy so its old-data read completes well after
  // the parity disk has read the old parity: SI must spin the parity
  // disk through held rotations.
  EventQueue eq;
  UncachedController c(eq,
                       config(Organization::kRaid5, 4,
                              SyncPolicy::kSimultaneousIssue));
  // Logical 0 -> data disk d; queue three long reads on that disk first.
  // Reads of logical 0 itself keep the same disk busy.
  for (int i = 0; i < 3; ++i)
    c.submit(ArrayRequest{0, 1, false}, nullptr);
  c.submit(ArrayRequest{0, 1, true}, nullptr);
  eq.run();
  std::uint64_t held = 0;
  for (const auto& disk : c.disks()) held += disk->stats().held_rotations;
  EXPECT_GT(held, 0u);
}

TEST_F(UncachedTest, MultiblockReadSpansDisksAndCompletesOnce) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  int completions = 0;
  c.submit(ArrayRequest{0, 4, false}, [&](SimTime) { ++completions; });
  eq.run();
  EXPECT_EQ(completions, 1);
  std::uint64_t reads = 0;
  for (const auto& disk : c.disks()) reads += disk->stats().reads;
  EXPECT_EQ(reads, 4u);
}

}  // namespace
}  // namespace raidsim
