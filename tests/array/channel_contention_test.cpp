// Channel contention through the controller: all user data of one array
// serialises on its 10 MB/s channel (Section 3.2), which is why larger
// arrays pay slightly more (Section 4.2.1).
#include <gtest/gtest.h>

#include "array/uncached_controller.hpp"

namespace raidsim {
namespace {

ArrayController::Config base_config(int n) {
  ArrayController::Config cfg;
  cfg.layout.organization = Organization::kBase;
  cfg.layout.data_disks = n;
  cfg.layout.data_blocks_per_disk = 1800;
  cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
  return cfg;
}

TEST(ChannelContention, ParallelReadsSerialiseOnTheChannel) {
  EventQueue eq;
  UncachedController c(eq, base_config(2));
  // One read per disk, both of block 0 of their disk: identical disk
  // timing, but the channel transfers one 4 KB block at a time.
  std::vector<double> done;
  c.submit(ArrayRequest{0, 1, false}, [&](SimTime t) { done.push_back(t); });
  c.submit(ArrayRequest{1800, 1, false},
           [&](SimTime t) { done.push_back(t); });
  eq.run();
  ASSERT_EQ(done.size(), 2u);
  // Second transfer queues behind the first: exactly one transfer time
  // (0.4096 ms) apart.
  EXPECT_NEAR(done[1] - done[0], 0.4096, 1e-9);
  EXPECT_NEAR(c.channel().busy_ms(), 2 * 0.4096, 1e-9);
}

TEST(ChannelContention, WritesCrossTheChannelBeforeTheDisks) {
  EventQueue eq;
  UncachedController c(eq, base_config(2));
  // Two writes to different disks: the second's channel transfer waits
  // for the first, so its disk op starts one 0.4096 ms transfer later --
  // visible as that much less rotational latency before its sector
  // arrives (both still land on the same revolution).
  std::vector<double> done;
  c.submit(ArrayRequest{0, 1, true}, [&](SimTime t) { done.push_back(t); });
  c.submit(ArrayRequest{1800, 1, true},
           [&](SimTime t) { done.push_back(t); });
  eq.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(c.channel().transfers(), 2u);
  const double rotation = c.disks()[0]->geometry().rotation_ms();
  const double xfer = 8.0 * c.disks()[0]->geometry().sector_time_ms();
  // Completion = channel wait + rotational alignment to sector 0 + write.
  EXPECT_NEAR(done[0], rotation + xfer, 1e-9);
  EXPECT_NEAR(c.disks()[0]->stats().latency_ms, rotation - 0.4096, 1e-9);
  EXPECT_NEAR(c.disks()[1]->stats().latency_ms, rotation - 2 * 0.4096, 1e-9);
}

TEST(ChannelContention, MultiblockTransfersScaleWithSize) {
  EventQueue eq;
  UncachedController c(eq, base_config(2));
  double single = -1.0, multi = -1.0;
  c.submit(ArrayRequest{0, 1, false}, [&](SimTime t) { single = t; });
  eq.run();
  EventQueue eq2;
  UncachedController c2(eq2, base_config(2));
  c2.submit(ArrayRequest{0, 8, false}, [&](SimTime t) { multi = t; });
  eq2.run();
  // 8 blocks: 8x the channel bytes and 8x the disk transfer sectors.
  EXPECT_GT(multi, single + 7 * 0.4096);
}

}  // namespace
}  // namespace raidsim
