// RebuildProcess restart-safety: a process runs at most once, start()
// is guarded against misuse, and a failure state that is cleared or
// moved mid-sweep aborts the sweep instead of corrupting the
// controller's watermark.
#include <gtest/gtest.h>

#include "array/rebuild.hpp"
#include "array/uncached_controller.hpp"

namespace raidsim {
namespace {

class RebuildGuardTest : public ::testing::Test {
 protected:
  ArrayController::Config config() {
    ArrayController::Config cfg;
    cfg.layout.organization = Organization::kRaid5;
    cfg.layout.data_disks = 4;
    cfg.layout.data_blocks_per_disk = 360;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  RebuildProcess::Options options() {
    RebuildProcess::Options opt;
    opt.blocks_per_pass = 60;
    return opt;
  }
};

TEST_F(RebuildGuardTest, StartWhileRunningThrows) {
  EventQueue eq;
  UncachedController c(eq, config());
  c.fail_disk(1);
  RebuildProcess rebuild(eq, c, options());
  rebuild.start([](SimTime) {});
  EXPECT_TRUE(rebuild.running());
  EXPECT_THROW(rebuild.start([](SimTime) {}), std::logic_error);
  eq.run();
  EXPECT_TRUE(rebuild.completed());
}

TEST_F(RebuildGuardTest, StartAfterCompletionThrows) {
  EventQueue eq;
  UncachedController c(eq, config());
  c.fail_disk(1);
  RebuildProcess rebuild(eq, c, options());
  int completions = 0;
  rebuild.start([&](SimTime) { ++completions; });
  eq.run();
  ASSERT_EQ(completions, 1);
  ASSERT_TRUE(rebuild.completed());
  EXPECT_EQ(c.failed_disk(), -1);
  // Restarting a finished process would re-sweep a healthy disk.
  EXPECT_THROW(rebuild.start([](SimTime) {}), std::logic_error);
}

TEST_F(RebuildGuardTest, FailureClearedMidSweepAbortsWithoutCompletion) {
  EventQueue eq;
  UncachedController c(eq, config());
  c.fail_disk(1);
  RebuildProcess rebuild(eq, c, options());
  int completions = 0;
  rebuild.start([&](SimTime) { ++completions; });
  // The failure state is yanked away while the first passes are still
  // in flight (e.g. an operator swap outside the process's control).
  eq.schedule_in(1.0, [&] { c.fail_disk(-1); });
  eq.run();

  EXPECT_TRUE(rebuild.aborted());
  EXPECT_FALSE(rebuild.completed());
  EXPECT_FALSE(rebuild.running());
  EXPECT_EQ(completions, 0);  // on_complete must not fire for an abort
  EXPECT_LT(rebuild.blocks_rebuilt(), rebuild.blocks_total());
  EXPECT_THROW(rebuild.start([](SimTime) {}), std::logic_error);
}

TEST_F(RebuildGuardTest, FailureMovedToAnotherDiskMidSweepAborts) {
  EventQueue eq;
  UncachedController c(eq, config());
  c.fail_disk(1);
  RebuildProcess rebuild(eq, c, options());
  int completions = 0;
  rebuild.start([&](SimTime) { ++completions; });
  eq.schedule_in(1.0, [&] { c.fail_disk(3); });
  eq.run();
  EXPECT_TRUE(rebuild.aborted());
  EXPECT_EQ(completions, 0);
}

TEST_F(RebuildGuardTest, FailedDiskChangedBeforeStartThrows) {
  EventQueue eq;
  UncachedController c(eq, config());
  c.fail_disk(1);
  RebuildProcess rebuild(eq, c, options());
  c.fail_disk(-1);  // repaired before the sweep began
  EXPECT_THROW(rebuild.start([](SimTime) {}), std::logic_error);
}

}  // namespace
}  // namespace raidsim
