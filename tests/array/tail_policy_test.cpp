// Tail-tolerance policies (ArrayController::TailPolicy): hedged reads
// with first-completion-wins, deadline escalation, mirror
// redirect-on-slow, quarantine-aware scheduling, and the EWMA gate that
// keeps parity reconstructs from firing against healthy-but-queued
// disks. A disk is made fail-slow by installing a constant slowdown
// hook directly (the SlowdownInjector has its own tests).
#include <gtest/gtest.h>

#include <vector>

#include "array/uncached_controller.hpp"

namespace raidsim {
namespace {

class TailPolicyTest : public ::testing::Test {
 protected:
  ArrayController::Config config(Organization org, int n = 4) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 360;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  /// Constant extra service time on one disk: the canonical fail-slow
  /// straggler for these tests.
  static void make_slow(ArrayController& c, int disk, double extra_ms) {
    c.disks()[static_cast<std::size_t>(disk)]->set_slowdown_hook(
        [extra_ms](const DiskRequest&, SimTime, double) { return extra_ms; });
  }

  /// Logical blocks whose primary extent lives on `disk`.
  static std::vector<std::int64_t> blocks_on(const ArrayController& c,
                                             int disk, int count) {
    std::vector<std::int64_t> blocks;
    for (std::int64_t b = 0; b < 1440 && static_cast<int>(blocks.size()) <
                                             count;
         ++b) {
      if (c.layout().map_read(b, 1)[0].disk == disk) blocks.push_back(b);
    }
    return blocks;
  }

  /// Submit one read per block, spaced `gap_ms` apart (so completions
  /// feed the EWMA before the next arrival), and run to completion.
  static int drive(EventQueue& eq, ArrayController& c,
                   const std::vector<std::int64_t>& blocks,
                   double gap_ms = 25.0) {
    int completed = 0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const std::int64_t block = blocks[i];
      eq.schedule_at(static_cast<double>(i) * gap_ms, [&c, &completed, block] {
        c.submit(ArrayRequest{block, 1, false},
                 [&completed](SimTime) { ++completed; });
      });
    }
    eq.run();
    return completed;
  }

  /// Every logical block once: spreads warm-up ops across all disks.
  static std::vector<std::int64_t> spread_blocks(int count) {
    std::vector<std::int64_t> blocks;
    for (int i = 0; i < count; ++i)
      blocks.push_back((static_cast<std::int64_t>(i) * 37) % 1440);
    return blocks;
  }
};

TEST_F(TailPolicyTest, MirrorHedgeFirstCompletionWins) {
  EventQueue eq;
  auto cfg = config(Organization::kMirror);
  cfg.tail.enabled = true;
  cfg.tail.hedge_delay_ms = 30.0;
  UncachedController c(eq, cfg);
  const int slow = c.layout().map_read(0, 1)[0].disk;
  make_slow(c, slow, 400.0);

  const int n = drive(eq, c, blocks_on(c, slow, 24));
  EXPECT_EQ(n, 24);
  const auto& s = c.stats();
  EXPECT_GT(s.hedged_reads, 0u);
  EXPECT_GT(s.hedge_wins, 0u);
  // The straggler's late completions are the cancelled legs.
  EXPECT_GT(s.hedge_cancellations, 0u);
  EXPECT_EQ(s.timeouts_fired, 0u);  // no deadline configured
}

TEST_F(TailPolicyTest, DeadlineEscalationForcesTheHedge) {
  EventQueue eq;
  auto cfg = config(Organization::kMirror);
  cfg.tail.enabled = true;
  cfg.tail.read_deadline_ms = 60.0;  // no hedge timer: escalation only
  UncachedController c(eq, cfg);
  const int slow = c.layout().map_read(0, 1)[0].disk;
  make_slow(c, slow, 400.0);

  drive(eq, c, blocks_on(c, slow, 24));
  const auto& s = c.stats();
  EXPECT_GT(s.timeouts_fired, 0u);
  EXPECT_GT(s.hedged_reads, 0u);
  EXPECT_GT(s.hedge_wins, 0u);
}

TEST_F(TailPolicyTest, MirrorRedirectOnSlowSteersToTheTwin) {
  EventQueue eq;
  auto cfg = config(Organization::kMirror);
  cfg.tail.enabled = true;
  cfg.tail.redirect_on_slow = true;  // no hedging, no deadline
  UncachedController c(eq, cfg);
  const int slow = c.layout().map_read(0, 1)[0].disk;
  make_slow(c, slow, 400.0);

  // Long run on the slow disk's blocks: both twins warm their EWMAs
  // (the seek/queue tie-break spreads early reads over the pair), after
  // which the redirect overrides the seek choice.
  drive(eq, c, blocks_on(c, slow, 60));
  const auto& s = c.stats();
  EXPECT_GT(s.redirected_reads, 0u);
  EXPECT_EQ(s.hedged_reads, 0u);
  EXPECT_EQ(s.timeouts_fired, 0u);
}

TEST_F(TailPolicyTest, MirrorQuarantineReroutesWithoutTailPolicy) {
  // Quarantine containment is a health action, not a tail-latency
  // optimization: it must work even with the tail policy disabled.
  EventQueue eq;
  UncachedController c(eq, config(Organization::kMirror));
  const int bad = c.layout().map_read(0, 1)[0].disk;
  c.set_quarantined(bad, true);
  EXPECT_TRUE(c.is_quarantined(bad));
  EXPECT_EQ(c.quarantined_count(), 1);

  drive(eq, c, blocks_on(c, bad, 20));
  EXPECT_GT(c.stats().quarantine_reroutes, 0u);
  // Every read was served by the twin: the quarantined disk saw none.
  EXPECT_EQ(c.disks()[static_cast<std::size_t>(bad)]->stats().reads, 0u);

  c.set_quarantined(bad, false);
  EXPECT_EQ(c.quarantined_count(), 0);
}

TEST_F(TailPolicyTest, ParityQuarantineReconstructsAroundTheDisk) {
  EventQueue eq;
  auto cfg = config(Organization::kRaid5);
  cfg.tail.enabled = true;
  cfg.tail.reconstruct_on_slow = true;
  UncachedController c(eq, cfg);
  const int bad = c.layout().map_read(0, 1)[0].disk;
  c.set_quarantined(bad, true);

  drive(eq, c, blocks_on(c, bad, 12));
  EXPECT_GT(c.stats().quarantine_reroutes, 0u);
  EXPECT_EQ(c.disks()[static_cast<std::size_t>(bad)]->stats().reads, 0u);
}

TEST_F(TailPolicyTest, ParityHedgeRequiresEwmaSlowPrimary) {
  EventQueue eq;
  auto cfg = config(Organization::kRaid5);
  cfg.tail.enabled = true;
  cfg.tail.hedge_ewma_factor = 2.0;
  cfg.tail.reconstruct_on_slow = true;
  UncachedController c(eq, cfg);

  // Phase 1: healthy array. Warm every disk's EWMA; no hedge may fire
  // (no disk is slow relative to the median).
  drive(eq, c, spread_blocks(120));
  EXPECT_EQ(c.stats().hedged_reads, 0u);

  // Phase 2: one disk turns fail-slow. Its EWMA climbs past the
  // slow_ewma_factor gate and reads against it hedge via reconstruction.
  const int slow = c.layout().map_read(0, 1)[0].disk;
  make_slow(c, slow, 400.0);
  drive(eq, c, blocks_on(c, slow, 40));
  const auto& s = c.stats();
  EXPECT_GT(s.hedged_reads, 0u);
  EXPECT_GT(s.hedge_wins, 0u);
}

TEST_F(TailPolicyTest, DisabledPolicyCountsNothing) {
  EventQueue eq;
  auto cfg = config(Organization::kMirror);
  cfg.tail.enabled = false;
  cfg.tail.read_deadline_ms = 60.0;  // knobs set, master switch off
  cfg.tail.hedge_delay_ms = 30.0;
  cfg.tail.redirect_on_slow = true;
  UncachedController c(eq, cfg);
  const int slow = c.layout().map_read(0, 1)[0].disk;
  make_slow(c, slow, 400.0);

  drive(eq, c, blocks_on(c, slow, 24));
  const auto& s = c.stats();
  EXPECT_EQ(s.hedged_reads, 0u);
  EXPECT_EQ(s.hedge_wins, 0u);
  EXPECT_EQ(s.hedge_cancellations, 0u);
  EXPECT_EQ(s.timeouts_fired, 0u);
  EXPECT_EQ(s.redirected_reads, 0u);
  EXPECT_EQ(s.quarantine_reroutes, 0u);
  // The slowdown itself still happened -- only the mitigation is off.
  EXPECT_GT(c.disks()[static_cast<std::size_t>(slow)]->stats().slow_ops, 0u);
}

}  // namespace
}  // namespace raidsim
