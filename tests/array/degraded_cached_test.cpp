// Degraded-mode behaviour of the CACHED controller: miss fetches are
// reconstructed, destage plans are rewritten around the failed disk, and
// RAID4 bypasses the spool while degraded.
#include <gtest/gtest.h>

#include "array/cached_controller.hpp"

namespace raidsim {
namespace {

class DegradedCachedTest : public ::testing::Test {
 protected:
  ArrayController::Config config(Organization org, int n = 4) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 1800;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  CachedController::CacheConfig cache_config(bool parity_caching = false) {
    CachedController::CacheConfig cfg;
    cfg.cache_bytes = 64 * 4096;
    cfg.destage_period_ms = 50.0;
    cfg.parity_caching = parity_caching;
    return cfg;
  }

  void run_request(CachedController& c, EventQueue& eq, std::int64_t block,
                   bool write) {
    bool done = false;
    c.submit(ArrayRequest{block, 1, write}, [&](SimTime) { done = true; });
    while (!done && eq.step()) {
    }
    ASSERT_TRUE(done);
  }

  void drain(CachedController& c, EventQueue& eq) {
    eq.run_until(eq.now() + 5000.0);
    c.shutdown();
    eq.run();
  }
};

TEST_F(DegradedCachedTest, MissFetchReconstructs) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kRaid5), cache_config());
  const int victim = c.layout().map_read(0, 1)[0].disk;
  c.fail_disk(victim);
  run_request(c, eq, 0, false);
  EXPECT_EQ(c.stats().degraded_reads, 1u);
  EXPECT_TRUE(c.cache().contains(0));  // reconstructed block is cached
  // A second read is now a hit -- no further degraded work.
  run_request(c, eq, 0, false);
  EXPECT_EQ(c.stats().degraded_reads, 1u);
  EXPECT_EQ(c.stats().read_request_hits, 1u);
  drain(c, eq);
}

TEST_F(DegradedCachedTest, DestageRoutesAroundFailedDisk) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kRaid5), cache_config());
  const int victim = c.layout().map_read(0, 1)[0].disk;
  c.fail_disk(victim);
  run_request(c, eq, 0, true);  // cached write to the failed disk's block
  drain(c, eq);
  EXPECT_EQ(c.cache().dirty_count(), 0u);  // destaged
  EXPECT_GE(c.stats().degraded_writes, 1u);
  EXPECT_EQ(c.disks()[static_cast<std::size_t>(victim)]->stats().ops(), 0u);
  // The update survives via the parity write.
  std::uint64_t writes = 0;
  for (const auto& d : c.disks()) writes += d->stats().writes;
  EXPECT_GE(writes, 1u);
}

TEST_F(DegradedCachedTest, Raid4BypassesSpoolWhileDegraded) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kRaid4), cache_config(true));
  c.fail_disk(0);
  run_request(c, eq, 5, true);
  drain(c, eq);
  EXPECT_EQ(c.stats().parity_spools, 0u);  // direct parity path
  EXPECT_EQ(c.cache().dirty_count(), 0u);
  EXPECT_EQ(c.parity_queue_length(), 0u);
}

TEST_F(DegradedCachedTest, MirrorCachedFailureTransparent) {
  EventQueue eq;
  CachedController c(eq, config(Organization::kMirror), cache_config());
  c.fail_disk(0);
  run_request(c, eq, 0, false);  // miss -> twin serves it
  EXPECT_EQ(c.disks()[1]->stats().reads, 1u);
  run_request(c, eq, 0, true);
  drain(c, eq);
  // Destage writes only to the surviving twin.
  EXPECT_EQ(c.disks()[0]->stats().ops(), 0u);
  EXPECT_EQ(c.disks()[1]->stats().writes, 1u);
}

}  // namespace
}  // namespace raidsim
