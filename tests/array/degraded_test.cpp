// Degraded-mode operation and online rebuild: single disk failure,
// reconstruction of reads from the surviving parity-group members,
// parity-absorbing writes, and the RebuildProcess sweep.
#include <gtest/gtest.h>

#include "array/rebuild.hpp"
#include "array/uncached_controller.hpp"

namespace raidsim {
namespace {

class DegradedTest : public ::testing::Test {
 protected:
  ArrayController::Config config(Organization org, int n = 4) {
    ArrayController::Config cfg;
    cfg.layout.organization = org;
    cfg.layout.data_disks = n;
    cfg.layout.data_blocks_per_disk = 1800;
    cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
    return cfg;
  }

  double run_request(UncachedController& c, EventQueue& eq,
                     std::int64_t block, int count, bool write) {
    double done = -1.0;
    c.submit(ArrayRequest{block, count, write}, [&](SimTime t) { done = t; });
    eq.run();
    EXPECT_GE(done, 0.0);
    return done;
  }

  std::uint64_t total_reads(const UncachedController& c) {
    std::uint64_t n = 0;
    for (const auto& d : c.disks()) n += d->stats().reads;
    return n;
  }
};

TEST_F(DegradedTest, Raid5ReadReconstructsFromSurvivors) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  // Logical 0 -> row 0, column 0 -> some data disk; fail it.
  const int victim = c.layout().map_read(0, 1)[0].disk;
  c.fail_disk(victim);
  run_request(c, eq, 0, 1, false);
  // Reconstruction reads the 3 other data chunks + parity.
  EXPECT_EQ(total_reads(c), 4u);
  EXPECT_EQ(c.disks()[static_cast<std::size_t>(victim)]->stats().ops(), 0u);
  EXPECT_EQ(c.stats().degraded_reads, 1u);
}

TEST_F(DegradedTest, Raid5DegradedReadWaitsForSlowestSurvivor) {
  // Reconstruction completes when the LAST of the N surviving reads
  // finishes: busy any one survivor and the whole degraded read stalls.
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  const int victim = c.layout().map_read(0, 1)[0].disk;
  c.fail_disk(victim);
  // Block 1 is on another disk of row 0; queue work there first.
  const int survivor = c.layout().map_read(1, 1)[0].disk;
  ASSERT_NE(survivor, victim);
  c.submit(ArrayRequest{1, 1, false}, nullptr);
  c.submit(ArrayRequest{1, 1, false}, nullptr);
  const double slow = run_request(c, eq, 0, 1, false);

  EventQueue eq2;
  UncachedController healthy(eq2, config(Organization::kRaid5));
  const double normal = run_request(healthy, eq2, 0, 1, false);
  EXPECT_GT(slow, normal + 2.0);  // stuck behind the survivor's queue
}

TEST_F(DegradedTest, Raid5WriteToFailedDiskUpdatesParityOnly) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  const int victim = c.layout().map_read(0, 1)[0].disk;
  c.fail_disk(victim);
  run_request(c, eq, 0, 1, true);
  EXPECT_EQ(c.stats().degraded_writes, 1u);
  EXPECT_EQ(c.disks()[static_cast<std::size_t>(victim)]->stats().ops(), 0u);
  // Reconstruct-style: read the other data members, write parity.
  std::uint64_t writes = 0;
  for (const auto& d : c.disks()) writes += d->stats().writes;
  EXPECT_EQ(writes, 1u);          // parity only
  EXPECT_EQ(total_reads(c), 3u);  // surviving columns
}

TEST_F(DegradedTest, Raid5FailedParityDiskMakesWritesPlain) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  // Parity of row 0 (block 0's row) lives on some disk; fail it.
  const auto plan = c.layout().map_write(0, 1)[0];
  c.fail_disk(plan.parity.disk);
  run_request(c, eq, 0, 1, true);
  std::uint64_t rmws = 0, writes = 0;
  for (const auto& d : c.disks()) {
    rmws += d->stats().rmws;
    writes += d->stats().writes;
  }
  EXPECT_EQ(rmws, 0u);    // no parity to maintain, no RMW
  EXPECT_EQ(writes, 1u);  // the data write proceeds plainly
}

TEST_F(DegradedTest, MirrorFailureFallsBackToTwin) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kMirror));
  c.fail_disk(0);
  run_request(c, eq, 0, 1, false);
  EXPECT_EQ(c.disks()[1]->stats().reads, 1u);
  run_request(c, eq, 0, 1, true);
  // Write goes to the surviving twin only.
  EXPECT_EQ(c.disks()[0]->stats().ops(), 0u);
  EXPECT_EQ(c.disks()[1]->stats().writes, 1u);
}

TEST_F(DegradedTest, BaseFailureLosesData) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kBase));
  c.fail_disk(0);
  run_request(c, eq, 0, 1, false);
  run_request(c, eq, 0, 1, true);
  EXPECT_EQ(c.stats().unrecoverable, 2u);
  EXPECT_EQ(c.disks()[0]->stats().ops(), 0u);
}

TEST_F(DegradedTest, ParityStripingReconstructsAcrossGroup) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kParityStriping));
  const int victim = c.layout().map_read(0, 1)[0].disk;
  c.fail_disk(victim);
  run_request(c, eq, 0, 1, false);
  EXPECT_EQ(c.stats().degraded_reads, 1u);
  // N-1 = 3 surviving members + parity.
  EXPECT_EQ(total_reads(c), 4u);
}

TEST_F(DegradedTest, WatermarkRestoresNormalService) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  const int victim = c.layout().map_read(0, 1)[0].disk;
  c.fail_disk(victim);
  c.set_rebuild_watermark(1000);  // block 0 maps below the watermark
  run_request(c, eq, 0, 1, false);
  EXPECT_EQ(c.stats().degraded_reads, 0u);
  EXPECT_EQ(c.disks()[static_cast<std::size_t>(victim)]->stats().reads, 1u);
}

TEST_F(DegradedTest, FailDiskValidation) {
  EventQueue eq;
  UncachedController c(eq, config(Organization::kRaid5));
  EXPECT_THROW(c.fail_disk(99), std::invalid_argument);
  c.fail_disk(2);
  EXPECT_EQ(c.failed_disk(), 2);
  c.fail_disk(-1);
  EXPECT_EQ(c.failed_disk(), -1);
}

class RebuildTest : public DegradedTest {
 protected:
  ArrayController::Config small_config(Organization org) {
    auto cfg = config(org);
    cfg.layout.data_blocks_per_disk = 360;  // 2 cylinders: fast rebuild
    return cfg;
  }
};

TEST_F(RebuildTest, RebuildsWholeDiskAndClearsFailure) {
  EventQueue eq;
  UncachedController c(eq, small_config(Organization::kRaid5));
  c.fail_disk(1);
  RebuildProcess rebuild(eq, c);
  double completed = -1.0;
  rebuild.start([&](SimTime t) { completed = t; });
  eq.run();
  EXPECT_GT(completed, 0.0);
  EXPECT_FALSE(rebuild.running());
  EXPECT_EQ(rebuild.blocks_rebuilt(), rebuild.blocks_total());
  EXPECT_DOUBLE_EQ(rebuild.progress(), 1.0);
  EXPECT_EQ(c.failed_disk(), -1);
  // The replacement received the reconstructed writes.
  EXPECT_GT(c.disks()[1]->stats().writes, 0u);
  // Survivors supplied the data.
  EXPECT_GT(c.disks()[0]->stats().reads, 0u);
}

TEST_F(RebuildTest, MirrorRebuildCopiesFromTwin) {
  EventQueue eq;
  UncachedController c(eq, small_config(Organization::kMirror));
  c.fail_disk(2);
  RebuildProcess rebuild(eq, c);
  bool done = false;
  rebuild.start([&](SimTime) { done = true; });
  eq.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(c.disks()[3]->stats().reads,
            c.disks()[2]->stats().writes);  // twin feeds the copy
}

TEST_F(RebuildTest, ForegroundTrafficContinuesDuringRebuild) {
  EventQueue eq;
  UncachedController c(eq, small_config(Organization::kRaid5));
  c.fail_disk(0);
  RebuildProcess rebuild(eq, c, {.inter_pass_gap_ms = 5.0});
  bool rebuilt = false;
  rebuild.start([&](SimTime) { rebuilt = true; });
  int completed = 0;
  for (int i = 0; i < 20; ++i)
    c.submit(ArrayRequest{i * 17 % 1400, 1, i % 3 == 0}, [&](SimTime) {
      ++completed;
    });
  eq.run();
  EXPECT_TRUE(rebuilt);
  EXPECT_EQ(completed, 20);
}

TEST_F(RebuildTest, RefusesWithoutFailure) {
  EventQueue eq;
  UncachedController c(eq, small_config(Organization::kRaid5));
  EXPECT_THROW(RebuildProcess(eq, c), std::logic_error);
}

TEST_F(RebuildTest, RefusesBaseOrganization) {
  EventQueue eq;
  UncachedController c(eq, small_config(Organization::kBase));
  c.fail_disk(0);
  EXPECT_THROW(RebuildProcess(eq, c), std::logic_error);
}

}  // namespace
}  // namespace raidsim
