// Track-buffer pool pressure through the uncached controller: more
// concurrent reads than buffers must queue on the pool and still all
// complete.
#include <gtest/gtest.h>

#include "array/uncached_controller.hpp"

namespace raidsim {
namespace {

TEST(BufferPressure, OversubscribedReadsAllComplete) {
  EventQueue eq;
  ArrayController::Config cfg;
  cfg.layout.organization = Organization::kBase;
  cfg.layout.data_disks = 2;
  cfg.layout.data_blocks_per_disk = 1800;
  cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
  cfg.track_buffers_per_disk = 2;  // pool of 4
  UncachedController c(eq, cfg);
  ASSERT_EQ(c.buffers().capacity(), 4);

  int completed = 0;
  for (int i = 0; i < 30; ++i)
    c.submit(ArrayRequest{(i * 7) % 3600, 1, false},
             [&](SimTime) { ++completed; });
  eq.run();
  EXPECT_EQ(completed, 30);
  EXPECT_GT(c.buffers().stalls(), 0u);
  EXPECT_EQ(c.buffers().available(), 4);  // all returned
}

TEST(BufferPressure, WritesAlsoReleaseBuffers) {
  EventQueue eq;
  ArrayController::Config cfg;
  cfg.layout.organization = Organization::kRaid5;
  cfg.layout.data_disks = 4;
  cfg.layout.data_blocks_per_disk = 1800;
  cfg.layout.physical_blocks_per_disk = cfg.disk_geometry.total_blocks();
  cfg.track_buffers_per_disk = 1;  // pool of 5
  UncachedController c(eq, cfg);

  int completed = 0;
  for (int i = 0; i < 20; ++i)
    c.submit(ArrayRequest{(i * 11) % 7000, 1, i % 2 == 0},
             [&](SimTime) { ++completed; });
  eq.run();
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(c.buffers().available(), c.buffers().capacity());
}

}  // namespace
}  // namespace raidsim
