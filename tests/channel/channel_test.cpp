#include "channel/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace raidsim {
namespace {

TEST(Channel, TransferTimeMatchesRate) {
  EventQueue eq;
  Channel ch(eq, 10.0);  // 10 MB/s (Table 1)
  // 4 KB block: 4096 B / 10e6 B/s = 0.4096 ms.
  EXPECT_NEAR(ch.transfer_ms(4096), 0.4096, 1e-9);
  EXPECT_NEAR(ch.transfer_ms(0), 0.0, 1e-12);
}

TEST(Channel, CompletionAtTransferEnd) {
  EventQueue eq;
  Channel ch(eq, 10.0);
  double done = -1.0;
  ch.transfer(4096, [&](SimTime t) { done = t; });
  eq.run();
  EXPECT_NEAR(done, 0.4096, 1e-9);
}

TEST(Channel, FifoSerialisation) {
  EventQueue eq;
  Channel ch(eq, 10.0);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i)
    ch.transfer(4096, [&](SimTime t) { done.push_back(t); });
  EXPECT_EQ(ch.queue_length(), 2u);
  eq.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 0.4096, 1e-9);
  EXPECT_NEAR(done[1], 0.8192, 1e-9);
  EXPECT_NEAR(done[2], 1.2288, 1e-9);
}

TEST(Channel, UtilizationAndCounters) {
  EventQueue eq;
  Channel ch(eq, 10.0);
  ch.transfer(4096, nullptr);
  ch.transfer(4096, nullptr);
  eq.run();
  EXPECT_EQ(ch.transfers(), 2u);
  EXPECT_NEAR(ch.busy_ms(), 0.8192, 1e-9);
  EXPECT_NEAR(ch.utilization(1.6384), 0.5, 1e-9);
}

TEST(Channel, RejectsNonPositiveRate) {
  EventQueue eq;
  EXPECT_THROW(Channel(eq, 0.0), std::invalid_argument);
  EXPECT_THROW(Channel(eq, -1.0), std::invalid_argument);
}

TEST(BufferPool, GrantsImmediatelyWhenAvailable) {
  BufferPool pool(2);
  int grants = 0;
  pool.acquire([&] { ++grants; });
  pool.acquire([&] { ++grants; });
  EXPECT_EQ(grants, 2);
  EXPECT_EQ(pool.available(), 0);
}

TEST(BufferPool, QueuesWhenExhaustedFifo) {
  BufferPool pool(1);
  std::vector<int> order;
  pool.acquire([&] { order.push_back(0); });
  pool.acquire([&] { order.push_back(1); });
  pool.acquire([&] { order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(pool.waiting(), 2u);
  EXPECT_EQ(pool.stalls(), 2u);
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(pool.waiting(), 0u);
  pool.release();
  EXPECT_EQ(pool.available(), 1);
}

TEST(BufferPool, RejectsNonPositiveCapacity) {
  EXPECT_THROW(BufferPool(0), std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
