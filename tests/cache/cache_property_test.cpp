// Randomised property tests of the NV cache against a reference model:
// capacity is never exceeded, LRU victims match, and dirty/old-entry
// bookkeeping stays consistent under arbitrary operation sequences.
#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <unordered_set>

#include "cache/nv_cache.hpp"
#include "util/rng.hpp"

namespace raidsim {
namespace {

TEST(CacheProperty, CapacityNeverExceeded) {
  Rng rng(5);
  for (std::size_t capacity : {1u, 2u, 7u, 64u}) {
    NvCache cache(capacity, true);
    for (int op = 0; op < 5000; ++op) {
      const std::int64_t block = rng.uniform_i64(0, 99);
      switch (rng.uniform_u64(5)) {
        case 0:
          cache.read(block);
          break;
        case 1:
          cache.write(block);
          break;
        case 2:
          if (!cache.contains(block)) cache.insert_clean(block);
          break;
        case 3:
          if (cache.destage_eligible(block)) {
            cache.begin_destage(block);
            if (rng.bernoulli(0.3)) cache.write(block);  // redirty
            if (rng.bernoulli(0.5)) {
              cache.end_destage(block);
            } else {
              cache.abort_destage(block);
            }
          }
          break;
        case 4:
          if (rng.bernoulli(0.5)) {
            cache.try_reserve_parity_slot();
          } else if (cache.parity_slots() > 0) {
            cache.release_parity_slot();
          }
          break;
      }
      ASSERT_LE(cache.size(), capacity) << "capacity " << capacity
                                        << " op " << op;
      ASSERT_LE(cache.dirty_count(), cache.size());
      ASSERT_LE(cache.old_entries(), cache.size());
    }
  }
}

TEST(CacheProperty, DirtySetMatchesQueries) {
  Rng rng(6);
  NvCache cache(16, true);
  std::unordered_set<std::int64_t> model_dirty;
  for (int op = 0; op < 3000; ++op) {
    const std::int64_t block = rng.uniform_i64(0, 39);
    if (rng.bernoulli(0.5)) {
      const auto result = cache.write(block);
      if (result.accepted) model_dirty.insert(block);
      if (result.evicted_dirty) model_dirty.erase(result.victim);
    } else if (cache.destage_eligible(block)) {
      cache.begin_destage(block);
      cache.end_destage(block);
      model_dirty.erase(block);
    } else if (!cache.contains(block)) {
      const auto result = cache.insert_clean(block);
      if (result.evicted_dirty) model_dirty.erase(result.victim);
    }
    // Reads can evict nothing; probe consistency of a random block.
    const std::int64_t probe = rng.uniform_i64(0, 39);
    ASSERT_EQ(cache.is_dirty(probe), model_dirty.count(probe) > 0)
        << "probe " << probe << " op " << op;
  }
  ASSERT_EQ(cache.dirty_count(), model_dirty.size());
}

TEST(CacheProperty, LruVictimMatchesReferenceModel) {
  // Clean-only traffic: eviction order must be exact LRU.
  NvCache cache(8, false);
  std::list<std::int64_t> reference;  // front = MRU
  Rng rng(7);
  for (int op = 0; op < 4000; ++op) {
    const std::int64_t block = rng.uniform_i64(0, 29);
    if (cache.read(block)) {
      reference.remove(block);
      reference.push_front(block);
    } else {
      cache.insert_clean(block);
      if (reference.size() == 8) reference.pop_back();
      reference.push_front(block);
    }
    // The cached set must equal the reference set.
    for (std::int64_t probe : reference)
      ASSERT_TRUE(cache.contains(probe)) << "probe " << probe << " op " << op;
    ASSERT_EQ(cache.size(), reference.size());
  }
}

TEST(CacheProperty, OldEntriesAlwaysShadowDirtyBlocks) {
  Rng rng(8);
  NvCache cache(12, true);
  for (int op = 0; op < 3000; ++op) {
    const std::int64_t block = rng.uniform_i64(0, 23);
    switch (rng.uniform_u64(3)) {
      case 0:
        if (!cache.contains(block)) cache.insert_clean(block);
        break;
      case 1:
        cache.write(block);
        break;
      case 2:
        if (cache.destage_eligible(block)) {
          cache.begin_destage(block);
          cache.end_destage(block);
        }
        break;
    }
    // An old copy may only exist for a block still present in the cache.
    for (std::int64_t probe = 0; probe < 24; ++probe) {
      if (cache.has_old(probe)) {
        ASSERT_TRUE(cache.contains(probe)) << "probe " << probe;
      }
    }
  }
}

}  // namespace
}  // namespace raidsim
