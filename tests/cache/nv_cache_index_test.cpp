// Differential test for the NvCache storage rewrite: the intrusive
// slab + open-addressing index must behave exactly like a plainly
// written std::list + std::unordered_map cache with the same policy.
// The reference below is deliberately naive -- node-per-entry LRU list,
// hash map from key to iterator -- and both implementations are driven
// through long randomized op sequences with full-state comparison after
// every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/nv_cache.hpp"
#include "util/rng.hpp"

namespace raidsim {
namespace {

// The documented NvCache policy, written the obvious way. Keys use the
// same encoding as the real cache: data block*2, old copy block*2+1.
class ReferenceCache {
 public:
  ReferenceCache(std::size_t capacity, bool retain_old_data)
      : capacity_(capacity), retain_old_(retain_old_data) {}

  bool read(std::int64_t block) {
    auto it = map_.find(block * 2);
    if (it != map_.end()) {
      touch(it->second);
      ++stats_.read_hits;
      return true;
    }
    ++stats_.read_misses;
    return false;
  }

  bool contains(std::int64_t block) const {
    return map_.count(block * 2) != 0;
  }

  NvCache::InsertResult insert_clean(std::int64_t block) {
    NvCache::InsertResult result;
    if (contains(block)) {
      result.inserted = true;
      return result;
    }
    if (!make_room(true, result.evicted_dirty, result.victim)) {
      ++stats_.stalls;
      return result;
    }
    create(block * 2, false);
    result.inserted = true;
    return result;
  }

  NvCache::WriteResult write(std::int64_t block) {
    NvCache::WriteResult result;
    auto it = map_.find(block * 2);
    if (it != map_.end()) {
      ++stats_.write_hits;
      result.accepted = true;
      result.hit = true;
      if (it->second->in_flight) it->second->redirtied = true;
      if (!it->second->dirty) {
        if (retain_old_ && map_.count(block * 2 + 1) == 0) {
          bool evicted_dirty = false;
          std::int64_t victim = -1;
          if (make_room(false, evicted_dirty, victim, block * 2)) {
            create(block * 2 + 1, false);
            ++old_count_;
            result.captured_old = true;
            ++stats_.old_captures;
          }
        }
        it->second->dirty = true;
        ++dirty_count_;
      }
      touch(it->second);
      return result;
    }
    ++stats_.write_misses;
    if (!make_room(true, result.evicted_dirty, result.victim)) {
      ++stats_.stalls;
      return result;
    }
    create(block * 2, true);
    ++dirty_count_;
    result.accepted = true;
    return result;
  }

  std::vector<std::int64_t> collect_dirty() const {
    std::vector<std::int64_t> out;
    for (const Entry& e : lru_)
      if (e.key % 2 == 0 && e.dirty && !e.in_flight) out.push_back(e.key / 2);
    return out;
  }

  bool is_dirty(std::int64_t block) const {
    auto it = map_.find(block * 2);
    return it != map_.end() && it->second->dirty;
  }

  bool destage_eligible(std::int64_t block) const {
    auto it = map_.find(block * 2);
    return it != map_.end() && it->second->dirty && !it->second->in_flight;
  }

  bool has_old(std::int64_t block) const {
    return map_.count(block * 2 + 1) != 0;
  }

  void begin_destage(std::int64_t block) {
    auto it = map_.find(block * 2);
    ASSERT_TRUE(it != map_.end() && it->second->dirty);
    it->second->in_flight = true;
    it->second->redirtied = false;
  }

  void end_destage(std::int64_t block) {
    auto it = map_.find(block * 2);
    if (it == map_.end()) return;
    it->second->in_flight = false;
    if (it->second->redirtied) {
      it->second->redirtied = false;
      return;
    }
    it->second->dirty = false;
    --dirty_count_;
    auto old_it = map_.find(block * 2 + 1);
    if (old_it != map_.end()) erase(old_it->second);
  }

  void abort_destage(std::int64_t block) {
    auto it = map_.find(block * 2);
    if (it == map_.end()) return;
    it->second->in_flight = false;
    it->second->redirtied = false;
  }

  bool try_reserve_parity_slot() {
    bool evicted_dirty = false;
    std::int64_t victim = -1;
    if (!make_room(false, evicted_dirty, victim)) {
      ++stats_.stalls;
      return false;
    }
    ++parity_slots_;
    return true;
  }

  void release_parity_slot() { --parity_slots_; }

  void crash_reset(bool preserve) {
    if (!preserve) {
      lru_.clear();
      map_.clear();
      dirty_count_ = old_count_ = parity_slots_ = 0;
      return;
    }
    parity_slots_ = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->key % 2 == 1) {
        auto dead = it++;
        erase(dead);
      } else {
        it->in_flight = false;
        it->redirtied = false;
        ++it;
      }
    }
  }

  std::size_t size() const { return lru_.size() + parity_slots_; }
  std::size_t dirty_count() const { return dirty_count_; }
  std::size_t old_entries() const { return old_count_; }
  std::size_t parity_slots() const { return parity_slots_; }
  const NvCache::Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::int64_t key = 0;
    bool dirty = false;
    bool in_flight = false;
    bool redirtied = false;
  };
  using Iter = std::list<Entry>::iterator;

  void touch(Iter it) { lru_.splice(lru_.begin(), lru_, it); }

  void create(std::int64_t key, bool dirty) {
    lru_.push_front(Entry{key, dirty, false, false});
    map_[key] = lru_.begin();
  }

  void erase(Iter it) {
    if (it->key % 2 == 1) {
      --old_count_;
    } else if (it->dirty) {
      --dirty_count_;
    }
    map_.erase(it->key);
    lru_.erase(it);
  }

  static constexpr std::int64_t kNoProtect = INT64_MIN;

  bool make_room(bool allow_dirty, bool& evicted_dirty, std::int64_t& victim,
                 std::int64_t protect_key = kNoProtect) {
    evicted_dirty = false;
    victim = -1;
    if (size() < capacity_) return true;
    if (lru_.empty()) return false;
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->key != protect_key && !it->in_flight &&
          (allow_dirty || !it->dirty)) {
        ++stats_.evictions;
        if (it->key % 2 == 1) ++stats_.old_evictions;
        if (it->dirty) {
          ++stats_.dirty_evictions;
          evicted_dirty = true;
          victim = it->key / 2;
          auto old_it = map_.find(victim * 2 + 1);
          if (old_it != map_.end()) erase(old_it->second);
        }
        erase(it);
        return true;
      }
      if (it == lru_.begin()) break;
    }
    return false;
  }

  std::size_t capacity_;
  bool retain_old_;
  std::list<Entry> lru_;  // front = MRU
  std::unordered_map<std::int64_t, Iter> map_;
  std::size_t dirty_count_ = 0;
  std::size_t old_count_ = 0;
  std::size_t parity_slots_ = 0;
  NvCache::Stats stats_;
};

void expect_same_stats(const NvCache::Stats& a, const NvCache::Stats& b) {
  EXPECT_EQ(a.read_hits, b.read_hits);
  EXPECT_EQ(a.read_misses, b.read_misses);
  EXPECT_EQ(a.write_hits, b.write_hits);
  EXPECT_EQ(a.write_misses, b.write_misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.old_evictions, b.old_evictions);
  EXPECT_EQ(a.dirty_evictions, b.dirty_evictions);
  EXPECT_EQ(a.stalls, b.stalls);
  EXPECT_EQ(a.old_captures, b.old_captures);
}

void expect_same_state(const NvCache& real, const ReferenceCache& ref,
                       std::int64_t block_range) {
  ASSERT_EQ(real.size(), ref.size());
  ASSERT_EQ(real.dirty_count(), ref.dirty_count());
  ASSERT_EQ(real.old_entries(), ref.old_entries());
  ASSERT_EQ(real.parity_slots(), ref.parity_slots());
  // Collection order is an implementation detail (the real cache walks
  // its dirty list, the reference walks the LRU list; the destage path
  // sorts either way) -- compare as sets.
  auto real_dirty = real.collect_dirty();
  auto ref_dirty = ref.collect_dirty();
  std::sort(real_dirty.begin(), real_dirty.end());
  std::sort(ref_dirty.begin(), ref_dirty.end());
  ASSERT_EQ(real_dirty, ref_dirty);
  for (std::int64_t b = 0; b < block_range; ++b) {
    ASSERT_EQ(real.contains(b), ref.contains(b)) << "block " << b;
    ASSERT_EQ(real.is_dirty(b), ref.is_dirty(b)) << "block " << b;
    ASSERT_EQ(real.destage_eligible(b), ref.destage_eligible(b))
        << "block " << b;
    ASSERT_EQ(real.has_old(b), ref.has_old(b)) << "block " << b;
  }
}

// One randomized episode: identical op sequence against both caches,
// full-state comparison after every operation.
void run_episode(std::size_t capacity, bool retain_old, std::uint64_t seed,
                 int ops) {
  SCOPED_TRACE("capacity=" + std::to_string(capacity) +
               " retain_old=" + std::to_string(retain_old) +
               " seed=" + std::to_string(seed));
  NvCache real(capacity, retain_old);
  ReferenceCache ref(capacity, retain_old);
  Rng rng(seed);

  const std::int64_t range =
      static_cast<std::int64_t>(capacity) * 3 + 4;
  std::vector<std::int64_t> in_flight;

  for (int op = 0; op < ops; ++op) {
    const std::uint64_t roll = rng.next_u64() % 100;
    const std::int64_t block =
        static_cast<std::int64_t>(rng.next_u64() % range);
    if (roll < 25) {
      ASSERT_EQ(real.read(block), ref.read(block));
    } else if (roll < 55) {
      const auto a = real.write(block);
      const auto b = ref.write(block);
      ASSERT_EQ(a.accepted, b.accepted);
      ASSERT_EQ(a.hit, b.hit);
      ASSERT_EQ(a.evicted_dirty, b.evicted_dirty);
      ASSERT_EQ(a.victim, b.victim);
      ASSERT_EQ(a.captured_old, b.captured_old);
    } else if (roll < 70) {
      const auto a = real.insert_clean(block);
      const auto b = ref.insert_clean(block);
      ASSERT_EQ(a.inserted, b.inserted);
      ASSERT_EQ(a.evicted_dirty, b.evicted_dirty);
      ASSERT_EQ(a.victim, b.victim);
    } else if (roll < 80) {
      const auto dirty = real.collect_dirty();
      if (!dirty.empty()) {
        const std::int64_t target =
            dirty[rng.next_u64() % dirty.size()];
        real.begin_destage(target);
        ref.begin_destage(target);
        in_flight.push_back(target);
      }
    } else if (roll < 88) {
      if (!in_flight.empty()) {
        const std::size_t pick = rng.next_u64() % in_flight.size();
        const std::int64_t target = in_flight[pick];
        in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
        real.end_destage(target);
        ref.end_destage(target);
      }
    } else if (roll < 92) {
      if (!in_flight.empty()) {
        const std::size_t pick = rng.next_u64() % in_flight.size();
        const std::int64_t target = in_flight[pick];
        in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
        real.abort_destage(target);
        ref.abort_destage(target);
      }
    } else if (roll < 96) {
      ASSERT_EQ(real.try_reserve_parity_slot(),
                ref.try_reserve_parity_slot());
    } else if (roll < 98) {
      if (real.parity_slots() > 0) {
        real.release_parity_slot();
        ref.release_parity_slot();
      }
    } else if (roll < 99) {
      real.crash_reset(/*preserve=*/true);
      ref.crash_reset(/*preserve=*/true);
      in_flight.clear();
    } else {
      real.crash_reset(/*preserve=*/false);
      ref.crash_reset(/*preserve=*/false);
      in_flight.clear();
    }
    expect_same_state(real, ref, range);
    if (::testing::Test::HasFatalFailure()) return;
  }
  expect_same_stats(real.stats(), ref.stats());
}

TEST(NvCacheIndex, MatchesReferenceTinyCapacities) {
  // Capacities 1-3 hit every degenerate path: single-slot eviction,
  // capture-vs-protect conflicts, fully pinned caches.
  for (std::size_t capacity : {1u, 2u, 3u})
    for (bool retain_old : {false, true})
      for (std::uint64_t seed : {1u, 2u, 3u})
        run_episode(capacity, retain_old, seed, 1500);
}

TEST(NvCacheIndex, MatchesReferenceSmallCapacity) {
  for (bool retain_old : {false, true})
    for (std::uint64_t seed : {11u, 12u})
      run_episode(8, retain_old, seed, 2500);
}

TEST(NvCacheIndex, MatchesReferenceMediumCapacity) {
  // Enough entries that backward-shift deletion regularly relocates
  // probe chains in the open-addressing index.
  for (std::uint64_t seed : {21u, 22u})
    run_episode(64, true, seed, 4000);
}

TEST(NvCacheIndex, ZeroCapacityRejected) {
  EXPECT_THROW(NvCache(0, true), std::invalid_argument);
}

// The index doubles when live entries pass 50% load. The initial table
// covers any capacity up to 1M entries, so growth only triggers beyond
// that -- drive a 2M-block cache far enough to cross it and verify the
// rehash kept every entry findable.
TEST(NvCacheIndex, IndexGrowthKeepsAllEntries) {
  const std::int64_t entries = (1 << 20) + (1 << 18);
  NvCache cache(static_cast<std::size_t>(2 * entries), true);
  for (std::int64_t b = 0; b < entries; ++b)
    ASSERT_TRUE(cache.insert_clean(b * 7).inserted);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(entries));
  for (std::int64_t b = 0; b < entries; b += 997)
    ASSERT_TRUE(cache.contains(b * 7)) << b;
  EXPECT_FALSE(cache.contains(3));  // never inserted (7 does not divide 3)
}

}  // namespace
}  // namespace raidsim
