#include "cache/nv_cache.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

TEST(NvCacheEdge, ZeroCapacityIsRejected) {
  EXPECT_THROW(NvCache(0, true), std::invalid_argument);
}

TEST(NvCacheEdge, CapacityOneStillCachesWrites) {
  NvCache cache(1, /*retain_old_data=*/true);
  auto w = cache.write(5);
  EXPECT_TRUE(w.accepted);
  EXPECT_FALSE(w.hit);
  EXPECT_TRUE(cache.is_dirty(5));
  // A second write displaces the first: the dirty victim must be handed
  // back for a synchronous writeback.
  w = cache.write(9);
  EXPECT_TRUE(w.accepted);
  EXPECT_TRUE(w.evicted_dirty);
  EXPECT_EQ(w.victim, 5);
  EXPECT_FALSE(cache.contains(5));
  EXPECT_TRUE(cache.is_dirty(9));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NvCacheEdge, CapacityOneSkipsOldCaptureRatherThanEvictTheBlock) {
  NvCache cache(1, /*retain_old_data=*/true);
  ASSERT_TRUE(cache.insert_clean(5).inserted);
  // Dirtying the only slot wants an old-data capture, but the only
  // evictable candidate is the block being written itself: the capture
  // is skipped, never the write.
  const auto w = cache.write(5);
  EXPECT_TRUE(w.accepted);
  EXPECT_TRUE(w.hit);
  EXPECT_FALSE(w.captured_old);
  EXPECT_EQ(cache.old_entries(), 0u);
  EXPECT_TRUE(cache.is_dirty(5));
}

TEST(NvCacheEdge, OldCaptureWillNotEvictADirtyBlock) {
  NvCache cache(2, /*retain_old_data=*/true);
  ASSERT_TRUE(cache.write(1).accepted);  // dirty, not evictable for capture
  ASSERT_TRUE(cache.insert_clean(5).inserted);
  const auto w = cache.write(5);
  EXPECT_TRUE(w.accepted);
  EXPECT_FALSE(w.captured_old);  // room only existed behind a dirty block
  EXPECT_EQ(cache.old_entries(), 0u);
  EXPECT_TRUE(cache.is_dirty(1));  // untouched
}

TEST(NvCacheEdge, OldCaptureEvictsCleanDataWhenAvailable) {
  NvCache cache(2, /*retain_old_data=*/true);
  ASSERT_TRUE(cache.insert_clean(1).inserted);  // clean filler (LRU victim)
  ASSERT_TRUE(cache.insert_clean(5).inserted);
  const auto w = cache.write(5);
  EXPECT_TRUE(w.captured_old);
  EXPECT_TRUE(cache.has_old(5));
  EXPECT_FALSE(cache.contains(1));  // clean filler paid for the capture
}

TEST(NvCacheEdge, RedirtyDoesNotCaptureTwice) {
  NvCache cache(4, /*retain_old_data=*/true);
  ASSERT_TRUE(cache.insert_clean(5).inserted);
  EXPECT_TRUE(cache.write(5).captured_old);
  EXPECT_FALSE(cache.write(5).captured_old);  // already dirty
  EXPECT_EQ(cache.stats().old_captures, 1u);
  EXPECT_EQ(cache.old_entries(), 1u);
}

TEST(NvCacheEdge, FullyPinnedByParitySlotsStallsWrites) {
  NvCache cache(2, /*retain_old_data=*/true);
  ASSERT_TRUE(cache.try_reserve_parity_slot());
  ASSERT_TRUE(cache.try_reserve_parity_slot());
  EXPECT_EQ(cache.size(), 2u);
  // Pinned slots hold the whole cache: nothing is evictable.
  EXPECT_FALSE(cache.try_reserve_parity_slot());
  auto w = cache.write(7);
  EXPECT_FALSE(w.accepted);
  EXPECT_GE(cache.stats().stalls, 1u);
  EXPECT_FALSE(cache.insert_clean(8).inserted);

  // Spooling one parity update out releases its slot and unblocks.
  cache.release_parity_slot();
  w = cache.write(7);
  EXPECT_TRUE(w.accepted);
  EXPECT_TRUE(cache.is_dirty(7));
}

TEST(NvCacheEdge, ParitySlotReservationEvictsCleanDataOnly) {
  NvCache cache(2, /*retain_old_data=*/true);
  ASSERT_TRUE(cache.write(1).accepted);         // dirty: pinned
  ASSERT_TRUE(cache.insert_clean(2).inserted);  // clean: evictable
  EXPECT_TRUE(cache.try_reserve_parity_slot());
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.is_dirty(1));
  // The remaining entry is dirty: a second reservation must stall.
  EXPECT_FALSE(cache.try_reserve_parity_slot());
}

TEST(NvCacheEdge, InFlightBlocksAreNotEvictable) {
  NvCache cache(1, /*retain_old_data=*/true);
  ASSERT_TRUE(cache.write(5).accepted);
  cache.begin_destage(5);
  EXPECT_FALSE(cache.destage_eligible(5));
  // Mid-destage the block is pinned: a conflicting insert stalls.
  const auto w = cache.write(9);
  EXPECT_FALSE(w.accepted);
  cache.end_destage(5);
  EXPECT_FALSE(cache.is_dirty(5));  // destage completed, now clean
  EXPECT_TRUE(cache.write(9).accepted);  // clean block 5 evictable again
}

TEST(NvCacheEdge, CrashResetPreservesDirtyDataButDropsOldCopies) {
  NvCache cache(8, /*retain_old_data=*/true);
  ASSERT_TRUE(cache.insert_clean(5).inserted);
  ASSERT_TRUE(cache.write(5).captured_old);
  ASSERT_TRUE(cache.write(6).accepted);
  cache.begin_destage(6);
  ASSERT_TRUE(cache.try_reserve_parity_slot());

  cache.crash_reset(/*preserve=*/true);
  EXPECT_TRUE(cache.is_dirty(5));
  EXPECT_TRUE(cache.is_dirty(6));
  EXPECT_TRUE(cache.destage_eligible(6));  // in-flight marker cleared
  EXPECT_EQ(cache.old_entries(), 0u);      // captures are ambiguous now
  EXPECT_EQ(cache.parity_slots(), 0u);     // volatile spool state gone
}

TEST(NvCacheEdge, CrashResetWipeLosesEverything) {
  NvCache cache(8, /*retain_old_data=*/true);
  ASSERT_TRUE(cache.write(5).accepted);
  ASSERT_TRUE(cache.try_reserve_parity_slot());
  cache.crash_reset(/*preserve=*/false);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.dirty_count(), 0u);
  EXPECT_EQ(cache.parity_slots(), 0u);
  EXPECT_FALSE(cache.contains(5));
}

}  // namespace
}  // namespace raidsim
