#include "cache/nv_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace raidsim {
namespace {

TEST(NvCache, ReadHitAndMissAccounting) {
  NvCache cache(4, false);
  EXPECT_FALSE(cache.read(1));
  cache.insert_clean(1);
  EXPECT_TRUE(cache.read(1));
  EXPECT_EQ(cache.stats().read_hits, 1u);
  EXPECT_EQ(cache.stats().read_misses, 1u);
}

TEST(NvCache, LruEvictionOrder) {
  NvCache cache(3, false);
  cache.insert_clean(1);
  cache.insert_clean(2);
  cache.insert_clean(3);
  cache.read(1);  // 1 becomes MRU; LRU order is now 2, 3, 1
  cache.insert_clean(4);
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(NvCache, WriteMissInstallsDirty) {
  NvCache cache(4, false);
  const auto result = cache.write(7);
  EXPECT_TRUE(result.accepted);
  EXPECT_FALSE(result.hit);
  EXPECT_TRUE(cache.is_dirty(7));
  EXPECT_EQ(cache.stats().write_misses, 1u);
}

TEST(NvCache, WriteHitDirtiesInPlace) {
  NvCache cache(4, false);
  cache.insert_clean(7);
  const auto result = cache.write(7);
  EXPECT_TRUE(result.hit);
  EXPECT_TRUE(cache.is_dirty(7));
  EXPECT_EQ(cache.size(), 1u);  // no old copy in non-parity mode
}

TEST(NvCache, DirtyEvictionReportsVictim) {
  NvCache cache(2, false);
  cache.write(1);
  cache.insert_clean(2);
  const auto result = cache.insert_clean(3);  // evicts dirty block 1
  EXPECT_TRUE(result.inserted);
  EXPECT_TRUE(result.evicted_dirty);
  EXPECT_EQ(result.victim, 1);
  EXPECT_EQ(cache.stats().dirty_evictions, 1u);
}

TEST(NvCache, OldDataCapturedOnDirtyingCleanBlock) {
  NvCache cache(8, true);
  cache.insert_clean(5);
  const auto result = cache.write(5);
  EXPECT_TRUE(result.captured_old);
  EXPECT_TRUE(cache.has_old(5));
  EXPECT_EQ(cache.size(), 2u);  // data + old copy
  // A second write does not capture again.
  const auto again = cache.write(5);
  EXPECT_FALSE(again.captured_old);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(NvCache, NoOldCaptureForWriteMiss) {
  NvCache cache(8, true);
  cache.write(9);  // miss: the on-disk version is unknown
  EXPECT_FALSE(cache.has_old(9));
}

TEST(NvCache, DestageCleansAndFreesOld) {
  NvCache cache(8, true);
  cache.insert_clean(5);
  cache.write(5);
  ASSERT_TRUE(cache.has_old(5));
  cache.begin_destage(5);
  cache.end_destage(5);
  EXPECT_FALSE(cache.is_dirty(5));
  EXPECT_FALSE(cache.has_old(5));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains(5));  // block remains cached clean
}

TEST(NvCache, RedirtyDuringDestageKeepsDirty) {
  NvCache cache(8, true);
  cache.write(5);
  cache.begin_destage(5);
  cache.write(5);  // re-dirtied in flight
  cache.end_destage(5);
  EXPECT_TRUE(cache.is_dirty(5));
  // A later clean destage succeeds.
  cache.begin_destage(5);
  cache.end_destage(5);
  EXPECT_FALSE(cache.is_dirty(5));
}

TEST(NvCache, InFlightBlocksNotEvicted) {
  NvCache cache(2, false);
  cache.write(1);
  cache.write(2);
  cache.begin_destage(1);
  cache.begin_destage(2);
  // Everything is dirty and in flight: insertion must stall.
  const auto result = cache.insert_clean(3);
  EXPECT_FALSE(result.inserted);
  EXPECT_EQ(cache.stats().stalls, 1u);
  cache.end_destage(1);
  EXPECT_TRUE(cache.insert_clean(3).inserted);
}

TEST(NvCache, CollectDirtySkipsInFlight) {
  NvCache cache(8, false);
  cache.write(1);
  cache.write(2);
  cache.write(3);
  cache.begin_destage(2);
  auto dirty = cache.collect_dirty();
  std::sort(dirty.begin(), dirty.end());
  EXPECT_EQ(dirty, (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(cache.dirty_count(), 3u);
  EXPECT_TRUE(cache.destage_eligible(1));
  EXPECT_FALSE(cache.destage_eligible(2));
  EXPECT_FALSE(cache.destage_eligible(99));
}

TEST(NvCache, AbortDestageLeavesDirty) {
  NvCache cache(8, false);
  cache.write(1);
  cache.begin_destage(1);
  cache.abort_destage(1);
  EXPECT_TRUE(cache.is_dirty(1));
  EXPECT_TRUE(cache.destage_eligible(1));
}

TEST(NvCache, ParitySlotsConsumeCapacity) {
  NvCache cache(3, true);
  EXPECT_TRUE(cache.try_reserve_parity_slot());
  EXPECT_TRUE(cache.try_reserve_parity_slot());
  EXPECT_TRUE(cache.try_reserve_parity_slot());
  EXPECT_EQ(cache.parity_slots(), 3u);
  EXPECT_EQ(cache.size(), 3u);
  // Full of pinned parity: nothing evictable.
  EXPECT_FALSE(cache.try_reserve_parity_slot());
  EXPECT_FALSE(cache.write(1).accepted);
  cache.release_parity_slot();
  EXPECT_TRUE(cache.write(1).accepted);
}

TEST(NvCache, ParityReservationEvictsCleanData) {
  NvCache cache(2, true);
  cache.insert_clean(1);
  cache.insert_clean(2);
  EXPECT_TRUE(cache.try_reserve_parity_slot());
  EXPECT_EQ(cache.size(), 2u);  // one data entry evicted for the slot
}

TEST(NvCache, ParityReservationNeverEvictsDirty) {
  NvCache cache(2, true);
  cache.write(1);
  cache.write(2);
  EXPECT_FALSE(cache.try_reserve_parity_slot());
  EXPECT_TRUE(cache.is_dirty(1));
  EXPECT_TRUE(cache.is_dirty(2));
}

// Regression: dirtying a clean block at the LRU tail of a full cache
// must not evict that block while capturing its old copy
// (heap-use-after-free found by ASan during calibration).
TEST(NvCache, OldCaptureDoesNotEvictTheBlockItself) {
  NvCache cache(2, true);
  cache.insert_clean(1);  // LRU order: 1 (tail after 2 arrives)
  cache.insert_clean(2);
  // Block 1 is the LRU tail; writing it needs a slot for the old copy.
  const auto result = cache.write(1);
  EXPECT_TRUE(result.accepted);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.is_dirty(1));
}

TEST(NvCache, DirtyVictimEvictionDropsItsOldCopy) {
  NvCache cache(3, true);
  cache.insert_clean(1);
  cache.write(1);  // dirty + old copy -> 2 slots
  cache.insert_clean(2);
  // Insert forces eviction; the oldest evictable entries go first, and
  // once the dirty block 1 is chosen its old copy must go with it.
  cache.insert_clean(3);
  cache.insert_clean(4);
  EXPECT_FALSE(cache.has_old(1));
  EXPECT_LE(cache.size(), 3u);
}

TEST(NvCache, CapacityValidation) {
  EXPECT_THROW(NvCache(0, false), std::invalid_argument);
}

TEST(NvCache, HitRatios) {
  NvCache cache(8, false);
  cache.insert_clean(1);
  cache.read(1);
  cache.read(2);
  EXPECT_NEAR(cache.stats().read_hit_ratio(), 0.5, 1e-12);
  cache.write(1);
  cache.write(3);
  EXPECT_NEAR(cache.stats().write_hit_ratio(), 0.5, 1e-12);
}

}  // namespace
}  // namespace raidsim
