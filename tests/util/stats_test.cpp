#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace raidsim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MatchesNaiveMoments) {
  OnlineStats s;
  std::vector<double> xs{1.5, 2.5, -3.0, 7.0, 0.0, 4.25};
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 7.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(OnlineStats, MergeEquivalentToSequential) {
  Rng rng(5);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 3.0);
}

TEST(Histogram, QuantileWithinBucketResolution) {
  Histogram h(0.1, 1000.0, 256);
  Rng rng(9);
  std::vector<double> xs(10000);
  for (auto& x : xs) x = rng.uniform(1.0, 100.0);
  for (double x : xs) h.add(x);
  std::sort(xs.begin(), xs.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact = xs[static_cast<std::size_t>(q * (xs.size() - 1))];
    EXPECT_NEAR(h.quantile(q), exact, exact * 0.08) << "q=" << q;
  }
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(1.0, 10.0, 4);
  h.add(0.001);
  h.add(1e9);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h(1.0, 10.0, 4);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(1.0, 100.0, 16), b(1.0, 100.0, 16);
  a.add(5.0);
  b.add(5.0);
  b.add(50.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(LatencyRecorder, BasicConsistency) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.count(), 100u);
  EXPECT_NEAR(r.mean(), 50.5, 1e-9);
  EXPECT_NEAR(r.p50(), 50.0, 5.0);
  EXPECT_NEAR(r.p95(), 95.0, 6.0);
  EXPECT_EQ(r.max(), 100.0);
}

TEST(LatencyRecorder, Merge) {
  LatencyRecorder a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), 2.0, 1e-12);
}

}  // namespace
}  // namespace raidsim
