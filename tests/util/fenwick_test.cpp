#include "util/fenwick.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace raidsim {
namespace {

TEST(Fenwick, EmptyTotals) {
  FenwickTree tree(8);
  EXPECT_EQ(tree.total(), 0);
  EXPECT_EQ(tree.prefix_sum(7), 0);
  EXPECT_EQ(tree.prefix_sum_exclusive(0), 0);
}

TEST(Fenwick, SingleSlot) {
  FenwickTree tree(1);
  tree.add(0, 5);
  EXPECT_EQ(tree.total(), 5);
  EXPECT_EQ(tree.prefix_sum(0), 5);
  EXPECT_EQ(tree.select(1), 0u);
  EXPECT_EQ(tree.select(5), 0u);
}

TEST(Fenwick, PrefixSumsMatchNaive) {
  const std::size_t n = 137;
  FenwickTree tree(n);
  std::vector<std::int64_t> naive(n, 0);
  Rng rng(1);
  for (int op = 0; op < 2000; ++op) {
    const auto i = static_cast<std::size_t>(rng.uniform_u64(n));
    const auto delta = rng.uniform_i64(0, 5);
    tree.add(i, delta);
    naive[i] += delta;
    const auto q = static_cast<std::size_t>(rng.uniform_u64(n));
    std::int64_t expected = 0;
    for (std::size_t j = 0; j <= q; ++j) expected += naive[j];
    ASSERT_EQ(tree.prefix_sum(q), expected) << "q=" << q;
  }
}

TEST(Fenwick, RangeSum) {
  FenwickTree tree(10);
  for (std::size_t i = 0; i < 10; ++i) tree.add(i, static_cast<std::int64_t>(i));
  EXPECT_EQ(tree.range_sum(3, 5), 3 + 4 + 5);
  EXPECT_EQ(tree.range_sum(0, 9), 45);
  EXPECT_EQ(tree.range_sum(7, 7), 7);
}

TEST(Fenwick, SelectMatchesNaive) {
  const std::size_t n = 64;
  FenwickTree tree(n);
  std::vector<std::int64_t> naive(n, 0);
  Rng rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = rng.uniform_i64(0, 3);
    tree.add(i, v);
    naive[i] = v;
  }
  const std::int64_t total = tree.total();
  ASSERT_GT(total, 0);
  for (std::int64_t target = 1; target <= total; ++target) {
    // Naive: smallest index whose inclusive prefix >= target.
    std::int64_t cum = 0;
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      cum += naive[i];
      if (cum >= target) {
        expected = i;
        break;
      }
    }
    ASSERT_EQ(tree.select(target), expected) << "target=" << target;
  }
}

TEST(Fenwick, SelectSkipsZeroSlots) {
  FenwickTree tree(8);
  tree.add(2, 1);
  tree.add(5, 1);
  EXPECT_EQ(tree.select(1), 2u);
  EXPECT_EQ(tree.select(2), 5u);
}

TEST(Fenwick, ResetClears) {
  FenwickTree tree(4);
  tree.add(1, 7);
  tree.reset(6);
  EXPECT_EQ(tree.size(), 6u);
  EXPECT_EQ(tree.total(), 0);
}

TEST(Fenwick, NegativeDeltasSupported) {
  FenwickTree tree(4);
  tree.add(0, 10);
  tree.add(0, -4);
  EXPECT_EQ(tree.prefix_sum(0), 6);
}

}  // namespace
}  // namespace raidsim
