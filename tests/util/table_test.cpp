#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace raidsim {
namespace {

TEST(Table, RendersHeaderAndCells) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::num(0.5, 3), "0.500");
}

TEST(Table, ColumnsAlignToWidestCell) {
  TablePrinter t({"x"});
  t.add_row({"looooooong"});
  const std::string out = t.to_string();
  // Each row line must have the same length.
  std::istringstream is(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Csv, PlainCells) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"a,b", "say \"hi\"", "multi\nline"});
  EXPECT_EQ(os.str(), "\"a,b\",\"say \"\"hi\"\"\",\"multi\nline\"\n");
}

}  // namespace
}  // namespace raidsim
