#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace raidsim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 9.0);
    ASSERT_GE(u, 3.0);
    ASSERT_LT(u, 9.0);
  }
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.uniform_u64(17), 17u);
}

TEST(Rng, UniformU64RoughlyUniform) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.uniform_u64(10)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformI64Inclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_i64(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 100000.0, 4.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 3.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(19);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal(std::log(100.0), 1.0);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 100.0, 5.0);
}

TEST(Rng, GeometricMeanAndSupport) {
  Rng rng(23);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const auto k = rng.geometric(0.25);
    ASSERT_GE(k, 1u);
    sum += static_cast<double>(k);
  }
  EXPECT_NEAR(sum / 100000.0, 4.0, 0.1);
}

TEST(Rng, GeometricProbabilityOneAlwaysOne) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(31);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Zipf, ThrowsOnBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 0.5), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 0.8);
  double total = 0.0;
  for (std::uint64_t k = 0; k < 100; ++k) total += zipf.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, ProbabilityMonotoneInRank) {
  ZipfSampler zipf(50, 0.9);
  for (std::uint64_t k = 1; k < 50; ++k)
    EXPECT_LT(zipf.probability(k), zipf.probability(k - 1));
}

TEST(Zipf, SamplesWithinRangeAndSkewed) {
  ZipfSampler zipf(64, 0.9);
  Rng rng(37);
  std::map<std::uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto k = zipf.sample(rng);
    ASSERT_LT(k, 64u);
    ++counts[k];
  }
  // Rank 0 should match its analytic probability reasonably well.
  EXPECT_NEAR(counts[0] / static_cast<double>(n), zipf.probability(0), 0.03);
  // And dominate the tail.
  EXPECT_GT(counts[0], counts[40] * 5);
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::uint64_t k = 0; k < 10; ++k)
    EXPECT_NEAR(zipf.probability(k), 0.1, 1e-9);
}

TEST(Alias, MatchesWeightsEmpirically) {
  AliasSampler alias({1.0, 2.0, 3.0, 4.0});
  Rng rng(41);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[alias.sample(rng)];
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(counts[i] / static_cast<double>(n), (i + 1) / 10.0, 0.01);
}

TEST(Alias, NormalisedProbabilities) {
  AliasSampler alias({2.0, 6.0});
  EXPECT_NEAR(alias.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(alias.probability(1), 0.75, 1e-12);
}

TEST(Alias, ThrowsOnBadWeights) {
  EXPECT_THROW(AliasSampler({}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({1.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), std::invalid_argument);
}

TEST(Alias, SingleElement) {
  AliasSampler alias({5.0});
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias.sample(rng), 0u);
}

}  // namespace
}  // namespace raidsim
