#include "util/mixture.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace raidsim {
namespace {

TEST(Mixture, ValidatesComponents) {
  EXPECT_THROW(LognormalMixture({}), std::invalid_argument);
  EXPECT_THROW(LognormalMixture({{-1.0, 10.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(LognormalMixture({{1.0, -10.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(LognormalMixture({{1.0, 10.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(LognormalMixture({{0.0, 10.0, 1.0}}), std::invalid_argument);
}

TEST(Mixture, CdfMonotoneFromZeroToOne) {
  LognormalMixture m({{0.4, 100.0, 1.0}, {0.6, 10000.0, 1.5}});
  EXPECT_EQ(m.cdf(0.0), 0.0);
  EXPECT_EQ(m.cdf(-5.0), 0.0);
  double prev = 0.0;
  for (double x = 1.0; x < 1e8; x *= 3.0) {
    const double c = m.cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(m.cdf(1e12), 1.0, 1e-6);
}

TEST(Mixture, SingleComponentMedian) {
  LognormalMixture m({{1.0, 500.0, 1.2}});
  EXPECT_NEAR(m.cdf(500.0), 0.5, 1e-9);
}

TEST(Mixture, EmpiricalCdfMatchesAnalytic) {
  LognormalMixture m({{0.3, 50.0, 0.8}, {0.7, 5000.0, 1.2}});
  Rng rng(123);
  const int n = 100000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = m.sample(rng);
  std::sort(xs.begin(), xs.end());
  for (double probe : {50.0, 500.0, 5000.0, 50000.0}) {
    const auto below = std::lower_bound(xs.begin(), xs.end(), probe) -
                       xs.begin();
    EXPECT_NEAR(static_cast<double>(below) / n, m.cdf(probe), 0.01)
        << "probe=" << probe;
  }
}

TEST(Mixture, WeightsNeedNotBeNormalised) {
  LognormalMixture a({{2.0, 100.0, 1.0}, {6.0, 1000.0, 1.0}});
  LognormalMixture b({{0.25, 100.0, 1.0}, {0.75, 1000.0, 1.0}});
  for (double x : {10.0, 100.0, 1000.0, 10000.0})
    EXPECT_NEAR(a.cdf(x), b.cdf(x), 1e-12);
}

}  // namespace
}  // namespace raidsim
