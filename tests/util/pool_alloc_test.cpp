#include "util/pool_alloc.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <thread>
#include <vector>

namespace raidsim {
namespace {

// A size distinct from anything the library allocates through the pool,
// so these tests own their free list entirely.
struct Odd {
  std::array<char, 57> bytes;
};

std::size_t list_size() {
  return pool_detail::free_list<sizeof(Odd)>().blocks.size();
}

TEST(PoolAllocator, RecyclesWithinThread) {
  PoolAllocator<Odd> alloc;
  Odd* a = alloc.allocate(1);
  alloc.deallocate(a, 1);
  const std::size_t after_free = list_size();
  EXPECT_GE(after_free, 1u);
  Odd* b = alloc.allocate(1);
  EXPECT_EQ(b, a);  // LIFO reuse of the freed block
  EXPECT_EQ(list_size(), after_free - 1);
  alloc.deallocate(b, 1);
}

TEST(PoolAllocator, FreeListIsCappedAfterBurst) {
  // Regression for the unbounded-growth bug: a burst of simultaneously
  // live blocks used to pin its high-water mark in the thread's list
  // forever. Frees beyond kMaxFreeBlocks must return to the heap.
  std::thread t([] {
    PoolAllocator<Odd> alloc;
    std::vector<Odd*> burst;
    for (std::size_t i = 0; i < pool_detail::kMaxFreeBlocks + 500; ++i)
      burst.push_back(alloc.allocate(1));
    for (Odd* p : burst) alloc.deallocate(p, 1);
    EXPECT_EQ(list_size(), pool_detail::kMaxFreeBlocks);
  });
  t.join();
}

TEST(PoolAllocator, CrossThreadFreeMigratesToFreeingThread) {
  // The header documents that a block freed on a different thread than
  // it was allocated on migrates lists. Exercise that path: the block
  // must land on the freeing thread's list (bounded by the cap) and the
  // allocating thread's list must be unaffected.
  PoolAllocator<Odd> alloc;
  Odd* p = alloc.allocate(1);
  const std::size_t home_before = list_size();
  std::thread t([p] {
    PoolAllocator<Odd> remote;
    const std::size_t remote_before = list_size();
    remote.deallocate(p, 1);
    EXPECT_EQ(list_size(), remote_before + 1);
    // Reuse on the adoptive thread hands the migrated block back.
    Odd* again = remote.allocate(1);
    EXPECT_EQ(again, p);
    remote.deallocate(again, 1);
  });
  t.join();
  EXPECT_EQ(list_size(), home_before);  // home thread never saw the free
}

TEST(PoolAllocator, MakePooledRoundTrips) {
  auto sp = make_pooled<Odd>();
  sp->bytes.fill('x');
  auto copy = sp;
  EXPECT_EQ(sp.use_count(), 2);
  copy.reset();
  sp.reset();
  auto again = make_pooled<Odd>();  // recycled control-block allocation
  EXPECT_NE(again, nullptr);
}

}  // namespace
}  // namespace raidsim
