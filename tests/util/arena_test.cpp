#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <random>
#include <thread>
#include <utility>
#include <vector>

namespace raidsim {
namespace {

TEST(OpArena, ClassForSelectsSmallestFit) {
  using op_detail::class_for;
  using op_detail::kClassBytes;
  using op_detail::kClasses;
  EXPECT_EQ(class_for(1), 0u);
  EXPECT_EQ(class_for(kClassBytes[0]), 0u);
  EXPECT_EQ(class_for(kClassBytes[0] + 1), 1u);
  for (std::size_t i = 0; i < kClasses; ++i)
    EXPECT_EQ(class_for(kClassBytes[i]), i);
  EXPECT_EQ(class_for(kClassBytes[kClasses - 1] + 1), kClasses);  // oversize
}

struct Counted {
  explicit Counted(int* live) : live_(live) { ++*live_; }
  ~Counted() { --*live_; }
  Counted(const Counted&) = delete;
  Counted& operator=(const Counted&) = delete;
  int* live_;
  int value = 0;
};

TEST(OpRef, RefcountCopyMoveResetSelfAssign) {
  OpArena arena(OpAlloc::kArena);
  int live = 0;
  auto a = make_op<Counted>(arena, &live);
  EXPECT_EQ(live, 1);
  EXPECT_EQ(a.use_count(), 1u);

  OpRef<Counted> b = a;  // copy
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(b.get(), a.get());

  OpRef<Counted> c = std::move(b);  // move: no refcount change
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(b.get(), nullptr);
  EXPECT_TRUE(c == a);

  c = c;  // self-assign must be a no-op
  EXPECT_EQ(a.use_count(), 2u);
  c = std::move(c);  // self-move must not lose the object
  EXPECT_TRUE(c != nullptr);
  EXPECT_EQ(live, 1);

  c.reset();
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(live, 1);
  a.reset();
  EXPECT_EQ(live, 0);  // destroyed exactly once
  EXPECT_EQ(a.use_count(), 0u);

  // Null handles compare and copy sanely.
  OpRef<Counted> n;
  OpRef<Counted> m = n;
  EXPECT_TRUE(n == nullptr);
  EXPECT_TRUE(m == n);
}

TEST(OpRef, FreedBlockIsRecycledLifo) {
  OpArena arena(OpAlloc::kArena);
  int live = 0;
  void* first;
  {
    auto a = make_op<Counted>(arena, &live);
    first = a.get();
  }
  EXPECT_EQ(live, 0);
  auto b = make_op<Counted>(arena, &live);
  EXPECT_EQ(b.get(), first);  // intrusive free list hands the block back
}

TEST(OpArena, ResetReuseKeepsHeapFlat) {
  OpArena arena(OpAlloc::kArena);
  std::uint64_t after_warmup = 0;
  for (int round = 0; round < 5; ++round) {
    std::vector<OpRef<std::array<char, 200>>> held;
    for (int i = 0; i < 500; ++i)
      held.push_back(make_op<std::array<char, 200>>(arena));
    held.clear();
    arena.reset();
    if (round == 0) {
      after_warmup = arena.heap_allocations();
      EXPECT_GT(after_warmup, 0u);  // the warmup round grabbed slabs
    }
  }
  // Every later round bumped through the retained slabs: zero new heap.
  EXPECT_EQ(arena.heap_allocations(), after_warmup);
  EXPECT_GT(arena.slab_count(), 0u);
}

TEST(OpArena, OversizeFallsBackToHeap) {
  OpArena arena(OpAlloc::kArena);
  using Big = std::array<unsigned char, 2048>;  // > largest class
  const auto before = arena.heap_allocations();
  auto big = make_op<Big>(arena);
  EXPECT_EQ(arena.heap_allocations(), before + 1);
  big->fill(0xAB);
  for (unsigned char v : *big) EXPECT_EQ(v, 0xAB);
  big.reset();
  // Oversize blocks are not recycled: each allocation is a heap trip.
  auto again = make_op<Big>(arena);
  EXPECT_EQ(arena.heap_allocations(), before + 2);
}

// Randomized differential fuzz: drive the arena with an arbitrary
// alloc/free interleaving across every size class and check each
// payload's fill pattern at release, against unique_ptr as the reference
// allocator (same sequence, same seeds). Any cross-class aliasing,
// premature recycle, or header stomp shows up as a pattern mismatch.
template <std::size_t N>
struct Blob {
  std::array<unsigned char, N> bytes;
};

class FuzzHarness {
 public:
  explicit FuzzHarness(OpArena& arena) : arena_(arena) {}

  template <std::size_t N>
  void allocate(unsigned char seed) {
    auto op = make_op<Blob<N>>(arena_);
    op->bytes.fill(seed);
    auto ref = std::make_shared<Blob<N>>();
    ref->bytes.fill(seed);
    live_.push_back([op = std::move(op), ref = std::move(ref)] {
      return std::memcmp(op->bytes.data(), ref->bytes.data(), N) == 0;
    });
  }

  void allocate_random(std::mt19937& rng) {
    const auto seed = static_cast<unsigned char>(rng());
    switch (rng() % 8) {
      case 0: allocate<8>(seed); break;
      case 1: allocate<40>(seed); break;
      case 2: allocate<100>(seed); break;
      case 3: allocate<200>(seed); break;
      case 4: allocate<400>(seed); break;
      case 5: allocate<700>(seed); break;
      case 6: allocate<1000>(seed); break;
      default: allocate<2000>(seed); break;  // oversize class
    }
  }

  bool release_random(std::mt19937& rng) {
    if (live_.empty()) return true;
    const std::size_t i = rng() % live_.size();
    const bool ok = live_[i]();
    live_[i] = std::move(live_.back());
    live_.pop_back();
    return ok;
  }

  bool drain() {
    bool ok = true;
    for (auto& check : live_) ok = ok && check();
    live_.clear();
    return ok;
  }

 private:
  OpArena& arena_;
  std::vector<std::function<bool()>> live_;
};

class OpArenaFuzz : public ::testing::TestWithParam<OpAlloc> {};

TEST_P(OpArenaFuzz, DifferentialAllocFreeFuzz) {
  OpArena arena(GetParam());
  std::mt19937 rng(20260809);
  FuzzHarness fuzz(arena);
  for (int step = 0; step < 20000; ++step) {
    if (rng() % 3 != 0) {
      fuzz.allocate_random(rng);
    } else {
      ASSERT_TRUE(fuzz.release_random(rng)) << "pattern mismatch at " << step;
    }
  }
  EXPECT_TRUE(fuzz.drain());
}

INSTANTIATE_TEST_SUITE_P(BothModes, OpArenaFuzz,
                         ::testing::Values(OpAlloc::kArena, OpAlloc::kPool),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(OpArenaPool, CrossThreadFreeMigratesAndRefcountIsAtomic) {
  OpArena arena(OpAlloc::kPool);
  int live = 0;
  auto op = make_op<Counted>(arena, &live);
  OpRef<Counted> other = op;  // two refs, dropped on different threads
  std::thread t([moved = std::move(other)]() mutable { moved.reset(); });
  t.join();
  EXPECT_EQ(live, 1);
  EXPECT_EQ(op.use_count(), 1u);
  op.reset();
  EXPECT_EQ(live, 0);
}

TEST(OpArenaPool, ThreadFreeListIsCapped) {
  OpArena arena(OpAlloc::kPool);
  using Small = std::array<char, 8>;
  const std::size_t cls = op_detail::class_for(sizeof(Small) +
                                               sizeof(op_detail::OpHeader));
  ASSERT_LT(cls, op_detail::kClasses);
  std::vector<OpRef<Small>> held;
  for (std::size_t i = 0; i < op_detail::kMaxPoolFree + 200; ++i)
    held.push_back(make_op<Small>(arena));
  held.clear();  // frees beyond the cap must go back to the heap
  EXPECT_LE(op_detail::pool_free_lists().lists[cls].size(),
            op_detail::kMaxPoolFree);
}

}  // namespace
}  // namespace raidsim
