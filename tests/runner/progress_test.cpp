// Progress-hook invariants for both engines:
//  - frames are monotone in events / sim time / completed requests,
//  - exactly one final frame arrives, last, with done == total,
//  - a hooked run's metrics stay bit-identical to an unhooked run,
//  - the metrics registry (on or off) never perturbs results either --
//    the telemetry plane is passive end to end.
#include <gtest/gtest.h>

#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "obs/metrics_registry.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/progress.hpp"

namespace raidsim {
namespace {

std::string metrics_json(const Metrics& m) {
  std::ostringstream os;
  m.to_json(os);
  return os.str();
}

SweepJob tiny_job(int shards) {
  SweepJob job;
  job.trace = "trace2";
  job.workload.scale = 0.05;
  job.workload.seed = 7;
  job.config.shards = shards;
  return job;
}

struct Frames {
  std::mutex mu;
  std::vector<ProgressSnapshot> all;
};

ProgressFn collector(Frames& frames) {
  return [&frames](const ProgressSnapshot& snap) {
    std::lock_guard<std::mutex> lock(frames.mu);
    frames.all.push_back(snap);
  };
}

void check_monotone(const std::vector<ProgressSnapshot>& frames) {
  ASSERT_FALSE(frames.empty());
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GE(frames[i].events, frames[i - 1].events) << "frame " << i;
    EXPECT_GE(frames[i].sim_ms, frames[i - 1].sim_ms) << "frame " << i;
    EXPECT_GE(frames[i].done, frames[i - 1].done) << "frame " << i;
  }
  std::size_t finals = 0;
  for (const ProgressSnapshot& f : frames) finals += f.final_frame ? 1 : 0;
  EXPECT_EQ(finals, 1u);
  EXPECT_TRUE(frames.back().final_frame) << "final frame must come last";
}

TEST(ProgressHook, ClassicFramesAreMonotoneWithOneFinal) {
  Frames frames;
  SweepJob job = tiny_job(0);
  job.progress = collector(frames);
  const Metrics m = run_sweep_job(job);
  check_monotone(frames.all);
  const ProgressSnapshot& last = frames.all.back();
  EXPECT_GT(last.total, 0u);
  EXPECT_EQ(last.done, last.total);
  EXPECT_EQ(last.done, static_cast<std::uint64_t>(m.requests));
  EXPECT_GT(last.events, 0u);
}

TEST(ProgressHook, ShardedFramesAreMonotoneWithOneFinal) {
  Frames frames;
  SweepJob job = tiny_job(2);
  job.progress = collector(frames);
  const Metrics m = run_sweep_job(job);
  check_monotone(frames.all);
  const ProgressSnapshot& last = frames.all.back();
  EXPECT_GT(last.total, 0u);
  EXPECT_EQ(last.done, last.total);
  EXPECT_EQ(last.done, static_cast<std::uint64_t>(m.requests));
}

TEST(ProgressHook, HookedClassicRunIsBitIdentical) {
  const Metrics plain = run_sweep_job(tiny_job(0));
  Frames frames;
  SweepJob job = tiny_job(0);
  job.progress = collector(frames);
  const Metrics hooked = run_sweep_job(job);
  EXPECT_EQ(metrics_json(plain), metrics_json(hooked));
}

TEST(ProgressHook, HookedShardedRunIsBitIdentical) {
  const Metrics plain = run_sweep_job(tiny_job(2));
  Frames frames;
  SweepJob job = tiny_job(2);
  job.progress = collector(frames);
  const Metrics hooked = run_sweep_job(job);
  EXPECT_EQ(metrics_json(plain), metrics_json(hooked));
}

TEST(ProgressHook, RegistryOnOffRunsAreBitIdentical) {
  // Classic vs sharded, registry enabled vs disabled: 4 runs, 1 answer.
  for (int shards : {0, 2}) {
    MetricsRegistry::instance().set_enabled(true);
    const Metrics on = run_sweep_job(tiny_job(shards));
    MetricsRegistry::instance().set_enabled(false);
    const Metrics off = run_sweep_job(tiny_job(shards));
    MetricsRegistry::instance().set_enabled(true);
    EXPECT_EQ(metrics_json(on), metrics_json(off)) << "shards=" << shards;
  }
}

TEST(ProgressHook, ClassicAndShardedAgreeUnderHooks) {
  Frames fc, fs;
  SweepJob classic = tiny_job(0);
  classic.progress = collector(fc);
  SweepJob sharded = tiny_job(2);
  sharded.progress = collector(fs);
  EXPECT_EQ(metrics_json(run_sweep_job(classic)),
            metrics_json(run_sweep_job(sharded)));
  // Both engines observed the same workload size.
  EXPECT_EQ(fc.all.back().total, fs.all.back().total);
}

TEST(ProgressHook, EngineEventCountersAdvance) {
  Counter& events = MetricsRegistry::instance().counter(
      "raidsim_engine_classic_events_total",
      "Events executed by the classic engine");
  const std::uint64_t before = events.value();
  run_sweep_job(tiny_job(0));
  EXPECT_GT(events.value(), before);
}

}  // namespace
}  // namespace raidsim
