// Cooperative-cancellation coverage for both engines (the service's
// deadline/watchdog/drain paths all ride on these tokens):
//  - a cancelled run unwinds with CancelledError and leaks nothing
//    (the ASan job runs this binary with detect_leaks=1),
//  - a token that never fires changes NOTHING: metrics stay
//    bit-identical to a run without any token.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "runner/sharded_sim.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/cancellation.hpp"

namespace raidsim {
namespace {

WorkloadOptions tiny_workload() {
  WorkloadOptions wo;
  wo.scale = 0.05;
  wo.seed = 1;
  return wo;
}

std::string metrics_json(const Metrics& m) {
  std::ostringstream os;
  m.to_json(os);
  return os.str();
}

SweepJob trace2_job(WorkloadOptions wo) {
  SweepJob job;
  job.trace = "trace2";
  job.workload = wo;
  return job;
}

TEST(Cancellation, TokenFirstReasonWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel(CancelReason::kDeadline);
  token.cancel(CancelReason::kWatchdog);  // loses the race
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, PreCancelledRunThrowsImmediately) {
  CancelToken token;
  token.cancel(CancelReason::kClient);
  SweepJob job = trace2_job(tiny_workload());
  job.cancel = &token;
  EXPECT_THROW(run_sweep_job(job), CancelledError);
}

TEST(Cancellation, MidRunCancelUnwindsClassicEngine) {
  // Cancel from another thread while the replay runs; the run must
  // throw CancelledError carrying the reason, and normal unwinding must
  // release everything (leak-checked under ASan).
  CancelToken token;
  SweepJob job = trace2_job(WorkloadOptions{});
  job.workload.scale = 1.0;  // long enough to guarantee a mid-run cancel
  job.workload.seed = 2;
  job.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.cancel(CancelReason::kDeadline);
  });
  try {
    run_sweep_job(job);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadline);
  }
  canceller.join();
}

TEST(Cancellation, MidRunCancelUnwindsShardedEngine) {
  CancelToken token;
  SweepJob job = trace2_job(WorkloadOptions{});
  job.config.shards = 2;
  job.config.shard_threads = 2;
  job.workload.scale = 1.0;
  job.workload.seed = 2;
  job.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.cancel(CancelReason::kShutdown);
  });
  EXPECT_THROW(run_sweep_job(job), CancelledError);
  canceller.join();
}

TEST(Cancellation, UnfiredTokenIsBitIdenticalClassic) {
  SweepJob plain = trace2_job(tiny_workload());
  const Metrics baseline = run_sweep_job(plain);

  CancelToken token;  // never fires
  SweepJob watched = plain;
  watched.cancel = &token;
  const Metrics observed = run_sweep_job(watched);
  EXPECT_EQ(metrics_json(baseline), metrics_json(observed));
}

TEST(Cancellation, UnfiredTokenIsBitIdenticalSharded) {
  SweepJob plain = trace2_job(tiny_workload());
  plain.config.shards = 2;
  const Metrics baseline = run_sweep_job(plain);

  CancelToken token;
  SweepJob watched = plain;
  watched.cancel = &token;
  const Metrics observed = run_sweep_job(watched);
  EXPECT_EQ(metrics_json(baseline), metrics_json(observed));
}

TEST(Cancellation, CancelledRunCanBeRetriedCleanly) {
  // The supervisor's retry path re-runs a job after a cancel/failure;
  // the second run must produce the same bytes as an undisturbed run.
  SweepJob plain = trace2_job(tiny_workload());
  const Metrics baseline = run_sweep_job(plain);

  CancelToken token;
  token.cancel();
  SweepJob doomed = plain;
  doomed.cancel = &token;
  EXPECT_THROW(run_sweep_job(doomed), CancelledError);

  token.reset();
  const Metrics retried = run_sweep_job(doomed);
  EXPECT_EQ(metrics_json(baseline), metrics_json(retried));
}

}  // namespace
}  // namespace raidsim
