// Per-job failure isolation (SweepRunner::run_all_isolated): a poisoned
// job in a sweep costs exactly that job. Surviving jobs keep their
// submission order and bit-identical metrics at any thread count.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "runner/sweep_runner.hpp"

namespace raidsim {
namespace {

WorkloadOptions tiny_workload(std::uint64_t seed) {
  WorkloadOptions wo;
  wo.scale = 0.02;
  wo.seed = seed;
  return wo;
}

std::string metrics_json(const Metrics& m) {
  std::ostringstream os;
  m.to_json(os);
  return os.str();
}

SweepJob labelled_job(std::uint64_t seed, const std::string& label) {
  SweepJob job;
  job.trace = "trace2";
  job.workload = tiny_workload(seed);
  job.label = label;
  return job;
}

std::vector<SweepResult> run_batch_isolated(int threads) {
  SweepRunner runner(threads);
  runner.submit(labelled_job(1, "a"));
  runner.submit("poisoned", []() -> Metrics {
    throw std::runtime_error("injected poison");
  });
  runner.submit(labelled_job(2, "b"));
  SweepJob sharded = labelled_job(3, "c");
  sharded.config.shards = 2;
  runner.submit(sharded);
  return runner.run_all_isolated();
}

TEST(SweepIsolation, PoisonedJobDoesNotAbortTheSweep) {
  const std::vector<SweepResult> results = run_batch_isolated(1);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].error, "injected poison");
  EXPECT_TRUE(results[2].ok());
  EXPECT_TRUE(results[3].ok());
  // Labels land at their submission indices.
  EXPECT_EQ(results[0].label, "a");
  EXPECT_EQ(results[1].label, "poisoned");
  EXPECT_EQ(results[2].label, "b");
  EXPECT_EQ(results[3].label, "c");
}

TEST(SweepIsolation, SurvivorsIdenticalAtOneAndFourThreads) {
  const std::vector<SweepResult> serial = run_batch_isolated(1);
  const std::vector<SweepResult> parallel = run_batch_isolated(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label, parallel[i].label);
    EXPECT_EQ(serial[i].error, parallel[i].error);
    if (serial[i].ok()) {
      EXPECT_EQ(metrics_json(serial[i].metrics),
                metrics_json(parallel[i].metrics))
          << "job " << i << " diverged across thread counts";
    }
  }
}

TEST(SweepIsolation, AllPoisonedStillReturnsEveryError) {
  SweepRunner runner(2);
  for (int i = 0; i < 3; ++i) {
    std::string label = "p";
    label += std::to_string(i);
    std::string what = "poison ";
    what += std::to_string(i);
    runner.submit(label, [what]() -> Metrics {
      throw std::runtime_error(what);
    });
  }
  const std::vector<SweepResult> results = runner.run_all_isolated();
  ASSERT_EQ(results.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    std::string expected = "poison ";
    expected += std::to_string(i);
    EXPECT_EQ(results[static_cast<std::size_t>(i)].error, expected);
  }
}

TEST(SweepIsolation, NonExceptionThrowGetsPlaceholderError) {
  SweepRunner runner(1);
  runner.submit("weird", []() -> Metrics { throw 42; });
  const std::vector<SweepResult> results = runner.run_all_isolated();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].error, "unknown exception");
}

TEST(SweepIsolation, RunAllStillRethrowsFirstError) {
  // The strict variant keeps its historical contract.
  SweepRunner runner(2);
  runner.submit(labelled_job(1, "x"));
  runner.submit("boom", []() -> Metrics {
    throw std::runtime_error("strict mode rethrows");
  });
  EXPECT_THROW(runner.run_all(), std::runtime_error);
}

}  // namespace
}  // namespace raidsim
