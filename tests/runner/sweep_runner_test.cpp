// SweepRunner contract: results come back in submission order with
// byte-identical metrics regardless of thread count, and worker failures
// surface as the first submitted job's exception.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/tracer.hpp"
#include "runner/sweep_runner.hpp"

namespace raidsim {
namespace {

std::vector<SweepJob> small_sweep() {
  std::vector<SweepJob> jobs;
  WorkloadOptions wo;
  wo.scale = 0.01;
  for (auto org : {Organization::kRaid5, Organization::kMirror}) {
    for (int n : {5, 10}) {
      SimulationConfig config;
      config.organization = org;
      config.array_data_disks = n;
      config.cached = (org == Organization::kRaid5);
      SweepJob job;
      job.config = config;
      job.trace = n == 5 ? "trace1" : "trace2";
      job.workload = wo;
      job.label = to_string(org) + "/N" + std::to_string(n);
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

TEST(SweepRunner, ResultsIdenticalAcrossThreadCounts) {
  const auto jobs = small_sweep();

  SweepRunner serial(1);
  SweepRunner parallel(4);
  for (const auto& job : jobs) {
    serial.submit(job);
    parallel.submit(job);
  }
  const auto a = serial.run_all();
  const auto b = parallel.run_all();

  ASSERT_EQ(a.size(), jobs.size());
  ASSERT_EQ(b.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(a[i].label, jobs[i].label);
    EXPECT_EQ(b[i].label, jobs[i].label);
    // Exact equality, not near-equality: each job is a deterministic
    // simulation with isolated RNG + event-queue state, so thread count
    // must not perturb a single bit of the result.
    EXPECT_EQ(a[i].metrics.mean_response_ms(), b[i].metrics.mean_response_ms());
    EXPECT_EQ(a[i].metrics.requests, b[i].metrics.requests);
    EXPECT_EQ(a[i].metrics.events_executed, b[i].metrics.events_executed);
    EXPECT_EQ(a[i].metrics.elapsed_ms, b[i].metrics.elapsed_ms);
    EXPECT_EQ(a[i].metrics.disk_accesses, b[i].metrics.disk_accesses);
  }
}

TEST(SweepRunner, SubmissionOrderPreservedUnderParallelCompletion) {
  SweepRunner runner(4);
  // Jobs complete in scrambled order (later submissions are cheaper);
  // results must still come back in submission order.
  for (int i = 0; i < 12; ++i) {
    runner.submit("job" + std::to_string(i), [i] {
      Metrics m;
      volatile int sink = 0;
      for (int spin = 0; spin < (12 - i) * 20000; ++spin) sink = sink + 1;
      m.requests = static_cast<std::uint64_t>(i);
      return m;
    });
  }
  const auto results = runner.run_all();
  ASSERT_EQ(results.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].label,
              "job" + std::to_string(i));
    EXPECT_EQ(results[static_cast<std::size_t>(i)].metrics.requests,
              static_cast<std::uint64_t>(i));
  }
}

TEST(SweepRunner, RunnerIsReusableAndCountsThreads) {
  SweepRunner runner(2);
  EXPECT_EQ(runner.threads(), 2);
  EXPECT_EQ(runner.queued(), 0u);
  runner.submit("a", [] { return Metrics{}; });
  EXPECT_EQ(runner.queued(), 1u);
  EXPECT_EQ(runner.run_all().size(), 1u);
  EXPECT_EQ(runner.queued(), 0u);
  runner.submit("b", [] { return Metrics{}; });
  runner.submit("c", [] { return Metrics{}; });
  const auto results = runner.run_all();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].label, "b");
  EXPECT_EQ(results[1].label, "c");
}

TEST(SweepRunner, TracedJobsWriteSeparateArtifactsAndIdenticalMetrics) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  // Each traced job owns its tracer and artifact prefix, so a parallel
  // batch neither races nor perturbs the metrics of an untraced batch.
  auto jobs = small_sweep();
  SweepRunner plain(4);
  SweepRunner traced(4);
  std::vector<std::string> prefixes;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    plain.submit(jobs[i]);
    SweepJob job = jobs[i];
    job.trace_out = ::testing::TempDir() + "sweep_traced_" +
                    std::to_string(i);
    prefixes.push_back(job.trace_out);
    traced.submit(std::move(job));
  }
  const auto a = plain.run_all();
  const auto b = traced.run_all();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metrics.mean_response_ms(), b[i].metrics.mean_response_ms());
    EXPECT_EQ(a[i].metrics.events_executed, b[i].metrics.events_executed);
  }
  for (const auto& prefix : prefixes) {
    const std::string path = prefix + ".trace.json";
    std::ifstream file(path);
    EXPECT_TRUE(file.good()) << path << " missing";
    file.close();
    std::remove(path.c_str());
  }
}

TEST(SweepRunner, DefaultThreadCountIsHardwareConcurrency) {
  SweepRunner runner(0);
  EXPECT_GE(runner.threads(), 1);
}

TEST(SweepRunner, FirstSubmittedExceptionWins) {
  SweepRunner runner(4);
  std::atomic<int> completed{0};
  runner.submit("ok0", [&] {
    ++completed;
    return Metrics{};
  });
  runner.submit("boom1", []() -> Metrics {
    throw std::runtime_error("first failure");
  });
  runner.submit("boom2", []() -> Metrics {
    throw std::invalid_argument("second failure");
  });
  runner.submit("ok3", [&] {
    ++completed;
    return Metrics{};
  });
  try {
    runner.run_all();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first failure");
  }
  // All jobs ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 2);
}

}  // namespace
}  // namespace raidsim
