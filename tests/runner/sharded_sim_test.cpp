// ShardedSimulator contract: one simulation partitioned by array must
// produce bit-identical merged metrics at ANY shard count >= 1 and ANY
// thread count -- the same determinism discipline SweepRunner holds
// across whole sweeps, applied inside a single run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "obs/tracer.hpp"
#include "runner/sharded_sim.hpp"
#include "runner/sweep_runner.hpp"
#include "trace/trace_io.hpp"

namespace raidsim {
namespace {

Metrics run_sharded(SimulationConfig config, const std::string& trace,
                    double scale, int shards, int threads) {
  config.shards = shards;
  config.shard_threads = threads;
  WorkloadOptions wo;
  wo.scale = scale;
  auto stream = make_workload(trace, wo);
  return run_sharded_simulation(config, *stream, wo.seed);
}

// Exact equality on every merged quantity, not near-equality: the engine
// promises the partition never perturbs a single bit.
void expect_identical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.elapsed_ms, b.elapsed_ms);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.arrays, b.arrays);
  EXPECT_EQ(a.total_disks, b.total_disks);

  EXPECT_EQ(a.response_all.count(), b.response_all.count());
  EXPECT_EQ(a.response_all.mean(), b.response_all.mean());
  EXPECT_EQ(a.response_all.p50(), b.response_all.p50());
  EXPECT_EQ(a.response_all.p95(), b.response_all.p95());
  EXPECT_EQ(a.response_all.p99(), b.response_all.p99());
  EXPECT_EQ(a.response_all.max(), b.response_all.max());
  EXPECT_EQ(a.response_read.count(), b.response_read.count());
  EXPECT_EQ(a.response_read.mean(), b.response_read.mean());
  EXPECT_EQ(a.response_write.count(), b.response_write.count());
  EXPECT_EQ(a.response_write.mean(), b.response_write.mean());

  EXPECT_EQ(a.disk_accesses, b.disk_accesses);
  EXPECT_EQ(a.disk_utilization, b.disk_utilization);

  EXPECT_EQ(a.disk_totals.reads, b.disk_totals.reads);
  EXPECT_EQ(a.disk_totals.writes, b.disk_totals.writes);
  EXPECT_EQ(a.disk_totals.rmws, b.disk_totals.rmws);
  EXPECT_EQ(a.disk_totals.busy_ms, b.disk_totals.busy_ms);
  EXPECT_EQ(a.disk_totals.seek_ms, b.disk_totals.seek_ms);
  EXPECT_EQ(a.disk_totals.queue_ms, b.disk_totals.queue_ms);
  EXPECT_EQ(a.disk_totals.held_rotations, b.disk_totals.held_rotations);

  EXPECT_EQ(a.controller.read_requests, b.controller.read_requests);
  EXPECT_EQ(a.controller.write_requests, b.controller.write_requests);
  EXPECT_EQ(a.controller.read_request_hits, b.controller.read_request_hits);
  EXPECT_EQ(a.controller.write_request_hits, b.controller.write_request_hits);
  EXPECT_EQ(a.controller.destage_writes, b.controller.destage_writes);
  EXPECT_EQ(a.controller.destage_blocks, b.controller.destage_blocks);
  EXPECT_EQ(a.controller.sync_victim_writes, b.controller.sync_victim_writes);
  EXPECT_EQ(a.controller.write_stalls, b.controller.write_stalls);
  EXPECT_EQ(a.controller.parity_spools, b.controller.parity_spools);
  EXPECT_EQ(a.controller.parity_queue_peak, b.controller.parity_queue_peak);

  EXPECT_EQ(a.cache.read_hits, b.cache.read_hits);
  EXPECT_EQ(a.cache.read_misses, b.cache.read_misses);
  EXPECT_EQ(a.cache.write_hits, b.cache.write_hits);
  EXPECT_EQ(a.cache.write_misses, b.cache.write_misses);
  EXPECT_EQ(a.cache.evictions, b.cache.evictions);
  EXPECT_EQ(a.cache.old_captures, b.cache.old_captures);
  EXPECT_EQ(a.cache.stalls, b.cache.stalls);

  EXPECT_EQ(a.channel_utilization, b.channel_utilization);
  EXPECT_EQ(a.channel_utilization_per_array, b.channel_utilization_per_array);
}

// Cached RAID5 over trace1: 13 arrays at N=10, destage timers and cache
// state active -- the configuration most sensitive to any cross-array
// coupling the partition might introduce.
TEST(ShardedSim, CachedRaid5MetricsInvariantAcrossShardCounts) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.array_data_disks = 10;
  config.cached = true;
  config.cache_bytes = 4 << 20;

  const Metrics base = run_sharded(config, "trace1", 0.01, 1, 1);
  ASSERT_GT(base.requests, 0u);
  EXPECT_EQ(base.arrays, 13);

  for (int shards : {2, 4, 13}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    expect_identical(base, run_sharded(config, "trace1", 0.01, shards, 1));
  }
}

TEST(ShardedSim, MetricsInvariantAcrossThreadCounts) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.array_data_disks = 10;
  config.cached = true;
  config.cache_bytes = 4 << 20;

  const Metrics one = run_sharded(config, "trace1", 0.01, 4, 1);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(one, run_sharded(config, "trace1", 0.01, 4, threads));
  }
}

// Uncached mirror over trace2 split into 5 small arrays: no cache, no
// destage timer -- exercises the pure replay/merge path.
TEST(ShardedSim, UncachedMirrorMetricsInvariant) {
  SimulationConfig config;
  config.organization = Organization::kMirror;
  config.array_data_disks = 2;

  const Metrics base = run_sharded(config, "trace2", 0.05, 1, 1);
  ASSERT_GT(base.requests, 0u);
  ASSERT_GT(base.arrays, 1);

  for (int shards : {2, base.arrays}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    expect_identical(base, run_sharded(config, "trace2", 0.05, shards, 2));
  }
}

TEST(ShardedSim, ShardCountClampedToArrayCount) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.array_data_disks = 10;
  config.shards = 64;  // trace1 only has 13 arrays
  WorkloadOptions wo;
  wo.scale = 0.005;
  auto stream = make_workload("trace1", wo);

  ShardedSimulator sim(config, stream->geometry());
  EXPECT_EQ(sim.arrays(), 13);
  EXPECT_EQ(sim.shards(), 13);

  const Metrics m = sim.run(*stream);
  expect_identical(m, run_sharded(config, "trace1", 0.005, 13, 1));
}

TEST(ShardedSim, RouteMatchesArrayMajorBlockLayout) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.array_data_disks = 10;
  config.shards = 4;
  WorkloadOptions wo;
  wo.scale = 0.005;
  auto stream = make_workload("trace1", wo);
  ShardedSimulator sim(config, stream->geometry());

  const std::int64_t per_array =
      stream->geometry().blocks_per_disk * config.array_data_disks;
  EXPECT_EQ(sim.route(0), (std::pair<int, std::int64_t>{0, 0}));
  EXPECT_EQ(sim.route(per_array - 1),
            (std::pair<int, std::int64_t>{0, per_array - 1}));
  EXPECT_EQ(sim.route(per_array), (std::pair<int, std::int64_t>{1, 0}));
  EXPECT_EQ(sim.route(3 * per_array + 7),
            (std::pair<int, std::int64_t>{3, 7}));
}

TEST(ShardedSim, ShardRngStreamsAreSeedDeterministic) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.array_data_disks = 10;
  config.shards = 4;
  WorkloadOptions wo;
  wo.scale = 0.005;
  auto stream = make_workload("trace1", wo);

  ShardedSimulator a(config, stream->geometry(), 1234);
  ShardedSimulator b(config, stream->geometry(), 1234);
  ShardedSimulator c(config, stream->geometry(), 5678);
  bool any_differs = false;
  for (int s = 0; s < a.shards(); ++s) {
    const auto x = a.shard_rng(s).next_u64();
    EXPECT_EQ(x, b.shard_rng(s).next_u64());
    if (x != c.shard_rng(s).next_u64()) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(ShardedSim, RunIsSingleShot) {
  SimulationConfig config;
  config.organization = Organization::kMirror;
  config.array_data_disks = 5;
  config.shards = 1;
  WorkloadOptions wo;
  wo.scale = 0.01;
  auto stream = make_workload("trace2", wo);
  ShardedSimulator sim(config, stream->geometry());
  sim.run(*stream);
  auto again = make_workload("trace2", wo);
  EXPECT_THROW(sim.run(*again), std::logic_error);
}

TEST(ShardedSim, GeometryMismatchRejected) {
  SimulationConfig config;
  config.organization = Organization::kMirror;
  config.array_data_disks = 5;
  config.shards = 2;
  WorkloadOptions wo;
  wo.scale = 0.01;
  auto trace2 = make_workload("trace2", wo);
  ShardedSimulator sim(config, trace2->geometry());
  auto trace1 = make_workload("trace1", wo);
  EXPECT_THROW(sim.run(*trace1), std::invalid_argument);
}

// A prevalidated binary trace must replay to the same merged metrics as
// the synthetic stream it was serialized from: skipping the per-record
// bounds check is a pure fast path, never a behaviour change.
TEST(ShardedSim, PrevalidatedBinaryTraceMatchesSyntheticStream) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.array_data_disks = 10;
  config.cached = true;
  config.cache_bytes = 4 << 20;
  config.shards = 2;
  WorkloadOptions wo;
  wo.scale = 0.005;

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  {
    auto stream = make_workload("trace1", wo);
    BinaryTraceWriter::write(*stream, buffer);
  }
  const std::string bytes = buffer.str();
  auto binary = BinaryTraceReader::from_buffer(bytes.data(), bytes.size());
  ASSERT_TRUE(binary->prevalidated());
  const Metrics from_binary =
      run_sharded_simulation(config, *binary, wo.seed);

  auto synthetic = make_workload("trace1", wo);
  const Metrics from_synthetic =
      run_sharded_simulation(config, *synthetic, wo.seed);
  expect_identical(from_binary, from_synthetic);
}

// The event kernel is a priority structure, not a policy: swapping the
// calendar queue for the 4-ary heap must not perturb a single bit of
// either engine's output. This is the contract that lets the heap stay
// around as a differential-testing yardstick (and lets the job cache
// ignore config.event_kernel).
TEST(ShardedSim, EventKernelInvariantOnBothEngines) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.array_data_disks = 10;
  config.cached = true;
  config.cache_bytes = 4 << 20;
  WorkloadOptions wo;
  wo.scale = 0.01;

  auto classic_run = [&](EventKernel kernel) {
    SimulationConfig c = config;
    c.event_kernel = kernel;
    auto stream = make_workload("trace1", wo);
    return run_simulation(c, *stream);
  };
  {
    SCOPED_TRACE("classic engine");
    expect_identical(classic_run(EventKernel::kCalendar),
                     classic_run(EventKernel::kHeap));
  }

  SimulationConfig heap_config = config;
  heap_config.event_kernel = EventKernel::kHeap;
  for (int shards : {1, 4}) {
    SCOPED_TRACE("sharded engine, shards=" + std::to_string(shards));
    expect_identical(run_sharded(config, "trace1", 0.01, shards, 1),
                     run_sharded(heap_config, "trace1", 0.01, shards, 1));
  }
}

// The op-state allocator is a pure performance knob: arena and pool runs
// must be bit-identical on both engines at every shard/thread count
// (nothing in the simulator orders by pointer value). This is the
// contract that lets op_alloc stay out of the svc job cache key.
TEST(ShardedSim, OpAllocInvariantOnBothEngines) {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.array_data_disks = 10;
  config.cached = true;
  config.cache_bytes = 4 << 20;
  WorkloadOptions wo;
  wo.scale = 0.01;

  auto classic_run = [&](EventKernel kernel, OpAlloc op_alloc) {
    SimulationConfig c = config;
    c.event_kernel = kernel;
    c.op_alloc = op_alloc;
    auto stream = make_workload("trace1", wo);
    return run_simulation(c, *stream);
  };
  for (EventKernel kernel : {EventKernel::kCalendar, EventKernel::kHeap}) {
    SCOPED_TRACE(std::string("classic engine, kernel=") + to_string(kernel));
    expect_identical(classic_run(kernel, OpAlloc::kArena),
                     classic_run(kernel, OpAlloc::kPool));
  }

  SimulationConfig pool_config = config;
  pool_config.op_alloc = OpAlloc::kPool;
  for (const auto& [shards, threads] : {std::pair{1, 1}, {4, 1}, {4, 2}}) {
    SCOPED_TRACE("sharded engine, shards=" + std::to_string(shards) +
                 " threads=" + std::to_string(threads));
    expect_identical(run_sharded(config, "trace1", 0.01, shards, threads),
                     run_sharded(pool_config, "trace1", 0.01, shards, threads));
  }
}

// run_sweep_job dispatches on config.shards: 0 keeps the classic engine,
// >= 1 selects the sharded engine.
TEST(ShardedSim, SweepJobDispatchesOnShardConfig) {
  SweepJob classic;
  classic.config.organization = Organization::kMirror;
  classic.config.array_data_disks = 5;
  classic.trace = "trace2";
  classic.workload.scale = 0.01;

  SweepJob sharded = classic;
  sharded.config.shards = 2;

  const Metrics a = run_sweep_job(classic);
  const Metrics b = run_sweep_job(sharded);
  // Same trace either way, so the replayed requests agree exactly. The
  // means agree only to floating-point reassociation: the classic engine
  // adds latencies in global completion order while the sharded merge
  // combines per-array recorders (see the determinism contract in
  // runner/sharded_sim.hpp).
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.response_all.count(), b.response_all.count());
  EXPECT_NEAR(a.response_all.mean(), b.response_all.mean(),
              1e-9 * a.response_all.mean());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Per-shard trace/timeseries artifacts must also be byte-identical at a
// fixed shard count regardless of thread count.
TEST(ShardedSim, TraceExportsByteIdenticalAcrossThreadCounts) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";

  const std::string dir = ::testing::TempDir();
  auto run_with = [&](int threads, const std::string& prefix) {
    SweepJob job;
    job.config.organization = Organization::kRaid5;
    job.config.array_data_disks = 10;
    job.config.cached = true;
    job.config.cache_bytes = 4 << 20;
    job.config.shards = 4;
    job.config.shard_threads = threads;
    job.trace = "trace1";
    job.workload.scale = 0.005;
    job.trace_out = dir + prefix;
    job.sample_interval_ms = 50.0;
    return run_sweep_job(job);
  };

  const Metrics a = run_with(1, "sharded_t1");
  const Metrics b = run_with(4, "sharded_t4");
  EXPECT_EQ(a.requests, b.requests);

  for (int shard = 0; shard < 4; ++shard) {
    const std::string suffix = "_shard" + std::to_string(shard);
    for (const char* kind : {".trace.json", ".timeseries.csv"}) {
      SCOPED_TRACE(suffix + kind);
      const std::string one = slurp(dir + "sharded_t1" + suffix + kind);
      const std::string four = slurp(dir + "sharded_t4" + suffix + kind);
      EXPECT_FALSE(one.empty());
      EXPECT_EQ(one, four);
      std::remove((dir + "sharded_t1" + suffix + kind).c_str());
      std::remove((dir + "sharded_t4" + suffix + kind).c_str());
    }
  }
}

}  // namespace
}  // namespace raidsim
