// Exporter contract: the Chrome trace JSON is well-formed and carries
// the documented event shapes, the time-series CSV header matches the
// sampler topology, and export_run_artifacts writes both files.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/simulator.hpp"
#include "core/workloads.hpp"

namespace raidsim {
namespace {

// Structural JSON check without a parser: braces/brackets balance
// outside string literals.
void expect_balanced_json(const std::string& text) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char ch : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (ch == '\\') escaped = true;
      else if (ch == '"') in_string = false;
      continue;
    }
    switch (ch) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

struct TracedArtifacts {
  std::string trace_json;
  std::string timeseries_csv;
  Metrics metrics;
};

TracedArtifacts traced_raid5_run() {
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.cached = true;
  config.obs.tracing = true;
  config.obs.sample_interval_ms = 10.0;
  WorkloadOptions wo;
  wo.scale = 0.01;
  auto stream = make_workload("trace1", wo);
  Simulator sim(config, stream->geometry());
  TracedArtifacts artifacts;
  artifacts.metrics = sim.run(*stream);
  std::ostringstream trace_out, csv_out;
  write_chrome_trace(trace_out, *sim.tracer(), sim.sampler());
  write_timeseries_csv(csv_out, *sim.sampler());
  artifacts.trace_json = trace_out.str();
  artifacts.timeseries_csv = csv_out.str();
  return artifacts;
}

TEST(ObsExport, ChromeTraceIsBalancedAndCarriesExpectedShapes) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const TracedArtifacts artifacts = traced_raid5_run();
  const std::string& json = artifacts.trace_json;
  ASSERT_FALSE(json.empty());
  expect_balanced_json(json);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Metadata names the tracks.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Disk service phases export as complete slices, host/queue phases as
  // async pairs, cache markers as instants, sampler series as counters.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("host-write"), std::string::npos);
  EXPECT_NE(json.find("disk-queue"), std::string::npos);
}

TEST(ObsExport, TimeSeriesCsvHeaderMatchesTopology) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  const TracedArtifacts artifacts = traced_raid5_run();
  std::istringstream in(artifacts.timeseries_csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("t_ms,outstanding,events_executed", 0), 0u);
  // One queue-depth and one utilization column per disk, one cache pair
  // per array.
  std::size_t queue_cols = 0, util_cols = 0, cache_cols = 0;
  std::istringstream cols(header);
  std::string col;
  while (std::getline(cols, col, ',')) {
    if (col.rfind("queue_d", 0) == 0) ++queue_cols;
    if (col.rfind("util_d", 0) == 0) ++util_cols;
    if (col.rfind("cache_used_a", 0) == 0) ++cache_cols;
  }
  EXPECT_EQ(queue_cols, static_cast<std::size_t>(artifacts.metrics.total_disks));
  EXPECT_EQ(util_cols, static_cast<std::size_t>(artifacts.metrics.total_disks));
  EXPECT_EQ(cache_cols, static_cast<std::size_t>(artifacts.metrics.arrays));

  // At least one data row, same column count as the header.
  std::string row;
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(std::count(row.begin(), row.end(), ','),
            std::count(header.begin(), header.end(), ','));
}

TEST(ObsExport, RunArtifactsWriteTraceAndTimeseriesFiles) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  SimulationConfig config;
  config.organization = Organization::kMirror;
  config.obs.tracing = true;
  config.obs.sample_interval_ms = 20.0;
  WorkloadOptions wo;
  wo.scale = 0.01;
  auto stream = make_workload("trace2", wo);
  Simulator sim(config, stream->geometry());
  sim.run(*stream);

  const std::string prefix = ::testing::TempDir() + "obs_export_test";
  const auto paths =
      export_run_artifacts(prefix, *sim.tracer(), sim.sampler());
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], prefix + ".trace.json");
  EXPECT_EQ(paths[1], prefix + ".timeseries.csv");
  for (const auto& path : paths) {
    std::ifstream file(path);
    ASSERT_TRUE(file.good()) << path;
    std::string first_line;
    EXPECT_TRUE(std::getline(file, first_line)) << path << " is empty";
    std::remove(path.c_str());
  }
}

TEST(ObsExport, RunArtifactsThrowOnUnwritablePrefix) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  Tracer tracer;
  tracer.instant(ObsPhase::kCacheHit, 0, -1, 1.0);
  EXPECT_THROW(
      export_run_artifacts("/nonexistent-dir/never/x", tracer, nullptr),
      std::runtime_error);
}

}  // namespace
}  // namespace raidsim
