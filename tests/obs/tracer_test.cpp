// Tracer contract: span ids are unique and never 0, the ring buffer
// keeps the newest window once full, and the obs_* instrumentation
// helpers are no-ops against a null tracer.
#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "obs/ring_buffer.hpp"

namespace raidsim {
namespace {

TEST(ObsTracer, BeginReturnsUniqueNonZeroIds) {
  Tracer tracer;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id =
        tracer.begin(ObsPhase::kDiskQueue, 0, i % 4, static_cast<double>(i));
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
  }
  EXPECT_EQ(tracer.recorded(), 100u);
  EXPECT_EQ(tracer.retained(), 100u);
  EXPECT_FALSE(tracer.wrapped());
}

TEST(ObsTracer, SpanEventsCarryTypeAndPhase) {
  Tracer tracer;
  const std::uint64_t id = tracer.begin(ObsPhase::kReadData, 1, 2, 5.0);
  tracer.end(id, ObsPhase::kReadData, 1, 2, 9.0);
  tracer.instant(ObsPhase::kCacheHit, 1, -1, 9.5, id);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, ObsType::kBegin);
  EXPECT_EQ(events[0].phase, ObsPhase::kReadData);
  EXPECT_EQ(events[0].id, id);
  EXPECT_EQ(events[0].array, 1);
  EXPECT_EQ(events[0].track, 2);
  EXPECT_EQ(events[1].type, ObsType::kEnd);
  EXPECT_EQ(events[1].ts, 9.0);
  EXPECT_EQ(events[2].type, ObsType::kInstant);
  EXPECT_EQ(events[2].phase, ObsPhase::kCacheHit);
}

TEST(ObsTracer, RingWrapKeepsNewestWindowOldestFirst) {
  Tracer tracer(Tracer::Config{8});
  for (int i = 0; i < 20; ++i)
    tracer.instant(ObsPhase::kDestageTick, 0, -1, static_cast<double>(i));

  EXPECT_TRUE(tracer.wrapped());
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.retained(), 8u);
  EXPECT_EQ(tracer.overwritten(), 12u);

  // Retained events are the 8 newest, visited oldest-first.
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].ts, static_cast<double>(12 + i));

  double last = -1.0;
  std::size_t visited = 0;
  tracer.for_each([&](const TraceEvent& e) {
    EXPECT_GT(e.ts, last);
    last = e.ts;
    ++visited;
  });
  EXPECT_EQ(visited, 8u);
}

TEST(ObsTracer, HelpersAreNoOpsWithoutTracer) {
  EXPECT_EQ(obs_begin(nullptr, ObsPhase::kHostRead, 0, -1, 1.0), 0u);
  obs_begin_with(nullptr, 7, ObsPhase::kWriteData, 0, 0, 1.0);
  obs_end(nullptr, 7, ObsPhase::kWriteData, 0, 0, 2.0);
  obs_instant(nullptr, ObsPhase::kCacheMiss, 0, -1, 2.0);

  // A zero id (span opened while tracing was off) records nothing even
  // against a live tracer.
  Tracer tracer;
  obs_begin_with(&tracer, 0, ObsPhase::kWriteData, 0, 0, 1.0);
  obs_end(&tracer, 0, ObsPhase::kWriteData, 0, 0, 2.0);
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(ObsTracer, RmwWritePhaseFollowsReadPhase) {
  EXPECT_EQ(rmw_write_phase(ObsPhase::kReadOldParity), ObsPhase::kWriteParity);
  EXPECT_EQ(rmw_write_phase(ObsPhase::kReadOldData), ObsPhase::kWriteData);
  EXPECT_EQ(rmw_write_phase(ObsPhase::kReadData), ObsPhase::kWriteData);
}

TEST(ObsRingBuffer, FillsThenOverwritesOldest) {
  RingBuffer<int> ring(4);
  EXPECT_EQ(ring.size(), 0u);
  for (int i = 0; i < 4; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.wrapped());
  EXPECT_EQ(ring[0], 0);
  EXPECT_EQ(ring[3], 3);

  ring.push(4);
  ring.push(5);
  EXPECT_TRUE(ring.wrapped());
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), 6u);
  // Index 0 is always the oldest retained element.
  EXPECT_EQ(ring[0], 2);
  EXPECT_EQ(ring[1], 3);
  EXPECT_EQ(ring[2], 4);
  EXPECT_EQ(ring[3], 5);
}

TEST(ObsRingBuffer, CapacityClampedToOne) {
  RingBuffer<int> ring(0);
  ring.push(1);
  ring.push(2);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0], 2);
}

}  // namespace
}  // namespace raidsim
