// End-to-end tracer invariants on real simulations: spans pair up,
// timestamps are monotonic, the host-span mean reproduces the Metrics
// mean, and tracing itself never perturbs the simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/workloads.hpp"
#include "obs/tracer.hpp"

namespace raidsim {
namespace {

struct TracedRun {
  Metrics metrics;
  std::vector<TraceEvent> events;
  std::unique_ptr<Simulator> sim;  // kept alive so sampler() stays valid
};

TracedRun run_traced(const SimulationConfig& base, const std::string& trace,
                     double scale, double sample_interval_ms = 0.0) {
  SimulationConfig config = base;
  config.obs.tracing = true;
  config.obs.sample_interval_ms = sample_interval_ms;
  WorkloadOptions wo;
  wo.scale = scale;
  auto stream = make_workload(trace, wo);
  TracedRun run;
  run.sim = std::make_unique<Simulator>(config, stream->geometry());
  run.metrics = run.sim->run(*stream);
  if (run.sim->tracer()) run.events = run.sim->tracer()->events();
  return run;
}

TEST(ObsSimulation, SpansPairAndTimestampsAreMonotonic) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.cached = true;
  const TracedRun run = run_traced(config, "trace1", 0.02);
  const std::vector<TraceEvent>& events = run.events;
  ASSERT_FALSE(events.empty());

  double last_ts = -1.0;
  // id -> phase of the currently open span under that id (spans under
  // one id never nest; an RMW op reuses its id serially: read-phase end
  // then write-phase begin).
  std::map<std::uint64_t, ObsPhase> open;
  std::uint64_t begins = 0, ends = 0;
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.ts, last_ts) << "timestamps must be monotonic";
    last_ts = e.ts;
    switch (e.type) {
      case ObsType::kBegin: {
        ++begins;
        auto [it, inserted] = open.emplace(e.id, e.phase);
        EXPECT_TRUE(inserted) << "id " << e.id << " opened twice";
        break;
      }
      case ObsType::kEnd: {
        ++ends;
        auto it = open.find(e.id);
        ASSERT_NE(it, open.end()) << "end without begin, id " << e.id;
        EXPECT_EQ(it->second, e.phase) << "end phase differs from begin";
        open.erase(it);
        break;
      }
      case ObsType::kInstant:
        break;
    }
  }
  EXPECT_EQ(begins, ends);
  EXPECT_TRUE(open.empty()) << open.size() << " spans never closed";
}

TEST(ObsSimulation, HostSpanMeanReproducesMetricsMean) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.cached = true;
  const TracedRun run = run_traced(config, "trace1", 0.02);
  const Metrics& metrics = run.metrics;

  std::map<std::uint64_t, double> open;
  std::uint64_t completed = 0;
  double total_ms = 0.0;
  for (const TraceEvent& e : run.events) {
    if (e.phase != ObsPhase::kHostRead && e.phase != ObsPhase::kHostWrite)
      continue;
    if (e.type == ObsType::kBegin) {
      open[e.id] = e.ts;
    } else if (e.type == ObsType::kEnd) {
      auto it = open.find(e.id);
      ASSERT_NE(it, open.end());
      total_ms += e.ts - it->second;
      ++completed;
      open.erase(it);
    }
  }
  ASSERT_GT(completed, 0u);
  EXPECT_EQ(completed, metrics.requests);
  const double traced_mean = total_ms / static_cast<double>(completed);
  // The acceptance bound for the whole pipeline: the trace reproduces
  // the simulator's own mean response within 0.1%.
  EXPECT_NEAR(traced_mean / metrics.mean_response_ms(), 1.0, 1e-3);
}

TEST(ObsSimulation, TracingLeavesEveryMetricBitIdentical) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.cached = true;
  WorkloadOptions wo;
  wo.scale = 0.02;

  auto plain_stream = make_workload("trace1", wo);
  const Metrics plain = run_simulation(config, *plain_stream);

  // Tracing appends to a side buffer and schedules nothing, so even the
  // kernel event count must match exactly. (The sampler is excluded: its
  // timer tick is a real event by design.)
  const TracedRun run = run_traced(config, "trace1", 0.02);
  const Metrics& traced = run.metrics;
  ASSERT_FALSE(run.events.empty());

  EXPECT_EQ(plain.requests, traced.requests);
  EXPECT_EQ(plain.events_executed, traced.events_executed);
  EXPECT_EQ(plain.elapsed_ms, traced.elapsed_ms);
  EXPECT_EQ(plain.mean_response_ms(), traced.mean_response_ms());
  EXPECT_EQ(plain.response_read.mean(), traced.response_read.mean());
  EXPECT_EQ(plain.response_write.mean(), traced.response_write.mean());
  EXPECT_EQ(plain.disk_accesses, traced.disk_accesses);
  EXPECT_EQ(plain.disk_utilization, traced.disk_utilization);
  EXPECT_EQ(plain.channel_utilization, traced.channel_utilization);
}

TEST(ObsSimulation, SamplerCollectsConsistentTelemetry) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  SimulationConfig config;
  config.organization = Organization::kRaid5;
  config.cached = true;
  const TracedRun run = run_traced(config, "trace1", 0.02, 5.0);
  const Metrics& metrics = run.metrics;
  ASSERT_NE(run.sim->sampler(), nullptr);

  const auto& samples = run.sim->sampler()->samples();
  ASSERT_GT(samples.size(), 1u);
  const std::size_t disks = static_cast<std::size_t>(metrics.total_disks);
  const std::size_t arrays = static_cast<std::size_t>(metrics.arrays);
  double last_t = -1.0;
  std::vector<double> last_busy(disks, 0.0);
  std::uint64_t last_events = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const TelemetrySample& s = samples[i];
    EXPECT_GT(s.t, last_t);
    last_t = s.t;
    ASSERT_EQ(s.queue_depth.size(), disks);
    ASSERT_EQ(s.busy_ms.size(), disks);
    ASSERT_EQ(s.cache_blocks.size(), arrays);
    ASSERT_EQ(s.cache_dirty.size(), arrays);
    EXPECT_GE(s.events_executed, last_events);
    last_events = s.events_executed;
    for (std::size_t d = 0; d < disks; ++d) {
      EXPECT_GE(s.busy_ms[d], last_busy[d]) << "busy time is cumulative";
      last_busy[d] = s.busy_ms[d];
    }
  }
}

TEST(ObsSimulation, ChannelUtilizationPerArrayAveragesToAggregate) {
  SimulationConfig config;
  config.organization = Organization::kMirror;
  config.cached = false;
  WorkloadOptions wo;
  wo.scale = 0.02;
  auto stream = make_workload("trace2", wo);
  const Metrics m = run_simulation(config, *stream);

  ASSERT_EQ(m.channel_utilization_per_array.size(),
            static_cast<std::size_t>(m.arrays));
  double sum = 0.0;
  for (double u : m.channel_utilization_per_array) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / static_cast<double>(m.arrays), m.channel_utilization,
              1e-12);
}

}  // namespace
}  // namespace raidsim
