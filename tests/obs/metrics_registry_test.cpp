// Metrics-registry invariants: sharded counters count exactly under
// contention, histograms keep cumulative buckets, the Prometheus scrape
// is well-formed, and a disabled registry is inert. The registry is
// process-global, so every assertion works on deltas, never absolutes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace raidsim {
namespace {

/// Re-enables the global registry no matter how the test exits.
struct EnabledGuard {
  ~EnabledGuard() { MetricsRegistry::instance().set_enabled(true); }
};

TEST(ObsMetricsRegistry, CounterCountsExactlyAcrossThreads) {
  Counter& counter = MetricsRegistry::instance().counter(
      "test_registry_contended_total", "test counter");
  const std::uint64_t before = counter.value();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();

  // Relaxed per-shard atomics still never lose an increment.
  EXPECT_EQ(counter.value() - before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetricsRegistry, ConcurrentFirstRegistrationYieldsOneObject) {
  // Regression guard: lazy metric construction used to happen after
  // lookup() released the registry mutex, so two threads racing on the
  // first registration of a name could each construct the metric
  // (destroying the object the other already held a reference to), and
  // a concurrent scrape() could dereference a still-null entry.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, &ready, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      Counter& counter = MetricsRegistry::instance().counter(
          "test_registry_race_total", "registered concurrently");
      seen[static_cast<std::size_t>(t)] = &counter;
      for (int i = 0; i < kPerThread; ++i) counter.add(1);
      // Scrapes interleaved with registration must see only complete
      // entries (never a null metric pointer).
      EXPECT_NE(MetricsRegistry::instance().scrape().find(
                    "test_registry_race_total"),
                std::string::npos);
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetricsRegistry, RegistrationIsIdempotentAndKindChecked) {
  Counter& a = MetricsRegistry::instance().counter("test_registry_idem_total",
                                                   "first");
  Counter& b = MetricsRegistry::instance().counter("test_registry_idem_total",
                                                   "second registration");
  EXPECT_EQ(&a, &b);
  // Same name, different kind: refused, not silently aliased.
  EXPECT_THROW(MetricsRegistry::instance().gauge("test_registry_idem_total",
                                                 "as gauge"),
               std::invalid_argument);
  EXPECT_THROW(MetricsRegistry::instance().counter("bad name!", "spaces"),
               std::invalid_argument);
}

TEST(ObsMetricsRegistry, GaugeSetAndAdd) {
  Gauge& gauge =
      MetricsRegistry::instance().gauge("test_registry_gauge", "test gauge");
  gauge.set(5.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 5.0);
  gauge.add(2.5);
  gauge.add(-1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 6.0);
  gauge.set(0.0);
}

TEST(ObsMetricsRegistry, HistogramBucketsAreCumulativeInScrape) {
  HistogramMetric& h = MetricsRegistry::instance().histogram(
      "test_registry_hist", "test histogram");
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(1e12);  // lands in the +Inf bucket

  const std::string scrape = MetricsRegistry::instance().scrape();
  ASSERT_NE(scrape.find("# TYPE test_registry_hist histogram"),
            std::string::npos);

  // _bucket counts must be non-decreasing with le, ending at _count.
  std::istringstream lines(scrape);
  std::string line;
  std::uint64_t last = 0, count = 0, buckets = 0;
  bool saw_inf = false;
  while (std::getline(lines, line)) {
    if (line.rfind("test_registry_hist_bucket{", 0) == 0) {
      const std::uint64_t v =
          std::strtoull(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
      EXPECT_GE(v, last) << line;
      last = v;
      ++buckets;
      if (line.find("le=\"+Inf\"") != std::string::npos) saw_inf = true;
    } else if (line.rfind("test_registry_hist_count ", 0) == 0) {
      count = std::strtoull(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
    }
  }
  EXPECT_GT(buckets, 2u);
  EXPECT_TRUE(saw_inf);
  EXPECT_GE(count, 4u);
  EXPECT_EQ(last, count) << "+Inf bucket must equal _count";
}

TEST(ObsMetricsRegistry, ScrapeIsWellFormed) {
  MetricsRegistry::instance().counter("test_registry_scrape_total", "help");
  const std::string scrape = MetricsRegistry::instance().scrape();
  ASSERT_FALSE(scrape.empty());
  EXPECT_EQ(scrape.back(), '\n');
  EXPECT_NE(scrape.find("# HELP test_registry_scrape_total help"),
            std::string::npos);
  EXPECT_NE(scrape.find("# TYPE test_registry_scrape_total counter"),
            std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  std::istringstream lines(scrape);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(ObsMetricsRegistry, DisabledRegistryIsInert) {
  EnabledGuard guard;
  Counter& counter = MetricsRegistry::instance().counter(
      "test_registry_disabled_total", "test");
  Gauge& gauge = MetricsRegistry::instance().gauge("test_registry_disabled_g",
                                                   "test");
  HistogramMetric& hist = MetricsRegistry::instance().histogram(
      "test_registry_disabled_h", "test");
  const std::uint64_t c0 = counter.value();
  gauge.set(0.0);
  const std::uint64_t h0 = hist.count();

  MetricsRegistry::instance().set_enabled(false);
  counter.add(100);
  gauge.set(42.0);
  gauge.add(7.0);
  hist.observe(1.0);
  MetricsRegistry::instance().set_enabled(true);

  EXPECT_EQ(counter.value(), c0);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.count(), h0);
}

TEST(ObsMetricsRegistry, ConcurrentHistogramObservationsKeepCount) {
  HistogramMetric& h = MetricsRegistry::instance().histogram(
      "test_registry_hist_mt", "test histogram");
  const std::uint64_t before = h.count();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(0.1 * (t + 1) * (i % 100 + 1));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count() - before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace raidsim
