#include "trace/lru_stack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace raidsim {
namespace {

/// Straightforward reference implementation.
class NaiveStack {
 public:
  void touch(std::int64_t block) {
    auto it = std::find(stack_.begin(), stack_.end(), block);
    if (it != stack_.end()) stack_.erase(it);
    stack_.insert(stack_.begin(), block);
  }
  std::optional<std::int64_t> at_depth(std::size_t d) const {
    if (d >= stack_.size()) return std::nullopt;
    return stack_[d];
  }
  std::optional<std::size_t> depth_of(std::int64_t block) const {
    auto it = std::find(stack_.begin(), stack_.end(), block);
    if (it == stack_.end()) return std::nullopt;
    return static_cast<std::size_t>(it - stack_.begin());
  }
  std::size_t size() const { return stack_.size(); }

 private:
  std::vector<std::int64_t> stack_;
};

TEST(LruStack, BasicSemantics) {
  LruStack stack;
  EXPECT_EQ(stack.size(), 0u);
  EXPECT_FALSE(stack.at_depth(0).has_value());

  stack.touch(10);
  stack.touch(20);
  stack.touch(30);
  EXPECT_EQ(stack.size(), 3u);
  EXPECT_EQ(stack.at_depth(0), 30);
  EXPECT_EQ(stack.at_depth(1), 20);
  EXPECT_EQ(stack.at_depth(2), 10);
  EXPECT_FALSE(stack.at_depth(3).has_value());
}

TEST(LruStack, TouchMovesToTop) {
  LruStack stack;
  stack.touch(1);
  stack.touch(2);
  stack.touch(3);
  stack.touch(1);  // re-reference
  EXPECT_EQ(stack.size(), 3u);
  EXPECT_EQ(stack.at_depth(0), 1);
  EXPECT_EQ(stack.at_depth(1), 3);
  EXPECT_EQ(stack.at_depth(2), 2);
}

TEST(LruStack, DepthOf) {
  LruStack stack;
  stack.touch(5);
  stack.touch(6);
  EXPECT_EQ(stack.depth_of(6), 0u);
  EXPECT_EQ(stack.depth_of(5), 1u);
  EXPECT_FALSE(stack.depth_of(7).has_value());
  EXPECT_TRUE(stack.contains(5));
  EXPECT_FALSE(stack.contains(7));
}

TEST(LruStack, MatchesNaiveUnderRandomWorkload) {
  LruStack stack(16);  // small initial capacity to force compactions
  NaiveStack naive;
  Rng rng(77);
  for (int op = 0; op < 20000; ++op) {
    const std::int64_t block = rng.uniform_i64(0, 299);
    stack.touch(block);
    naive.touch(block);
    ASSERT_EQ(stack.size(), naive.size());
    const auto d = static_cast<std::size_t>(rng.uniform_u64(naive.size() + 1));
    ASSERT_EQ(stack.at_depth(d), naive.at_depth(d)) << "op " << op;
    const std::int64_t probe = rng.uniform_i64(0, 299);
    ASSERT_EQ(stack.depth_of(probe), naive.depth_of(probe));
  }
}

TEST(LruStack, CompactionPreservesOrder) {
  LruStack stack(16);
  for (std::int64_t i = 0; i < 1000; ++i) stack.touch(i % 8);
  // After many re-touches the stack still holds exactly 8 blocks, most
  // recent last-touched order: 7 % 8 touched last at i=999.
  EXPECT_EQ(stack.size(), 8u);
  EXPECT_EQ(stack.at_depth(0), 999 % 8);
  EXPECT_EQ(stack.at_depth(7), (999 - 7) % 8);
}

TEST(LruStack, StackDistanceInclusionProperty) {
  // An access at stack distance d hits an LRU cache of size > d: verify
  // the hit counts derived from depth_of are monotone in cache size.
  LruStack stack;
  Rng rng(101);
  std::vector<std::uint64_t> hits_at_size{0, 0, 0};  // sizes 8, 32, 128
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t block = rng.uniform_i64(0, 199);
    const auto depth = stack.depth_of(block);
    if (depth) {
      if (*depth < 8) ++hits_at_size[0];
      if (*depth < 32) ++hits_at_size[1];
      if (*depth < 128) ++hits_at_size[2];
    }
    stack.touch(block);
  }
  EXPECT_LE(hits_at_size[0], hits_at_size[1]);
  EXPECT_LE(hits_at_size[1], hits_at_size[2]);
  EXPECT_GT(hits_at_size[2], 0u);
}

}  // namespace
}  // namespace raidsim
