#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

#include <deque>

namespace raidsim {
namespace {

/// Hand-built trace stream for exact accounting tests.
class FixedStream : public TraceStream {
 public:
  FixedStream(TraceGeometry geo, std::deque<TraceRecord> records)
      : geo_(geo), records_(std::move(records)) {}
  const TraceGeometry& geometry() const override { return geo_; }
  std::optional<TraceRecord> next() override {
    if (records_.empty()) return std::nullopt;
    TraceRecord r = records_.front();
    records_.pop_front();
    return r;
  }

 private:
  TraceGeometry geo_;
  std::deque<TraceRecord> records_;
};

TEST(TraceStats, CountsByKind) {
  TraceGeometry geo{2, 100};
  FixedStream stream(geo, {
                              {10.0, 0, 1, false},   // single read, disk 0
                              {5.0, 150, 1, true},   // single write, disk 1
                              {2.5, 10, 4, false},   // multiblock read
                              {0.0, 20, 2, true},    // multiblock write
                          });
  const TraceStats stats = TraceStats::collect(stream);
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.single_block_reads, 1u);
  EXPECT_EQ(stats.single_block_writes, 1u);
  EXPECT_EQ(stats.multiblock_reads, 1u);
  EXPECT_EQ(stats.multiblock_writes, 1u);
  EXPECT_EQ(stats.blocks_transferred, 8u);
  EXPECT_NEAR(stats.duration_ms, 17.5, 1e-12);
  EXPECT_NEAR(stats.write_fraction(), 0.5, 1e-12);
  EXPECT_NEAR(stats.single_block_fraction(), 0.5, 1e-12);
  ASSERT_EQ(stats.accesses_per_disk.size(), 2u);
  EXPECT_EQ(stats.accesses_per_disk[0], 3u);
  EXPECT_EQ(stats.accesses_per_disk[1], 1u);
}

TEST(TraceStats, SkewCv) {
  TraceGeometry geo{2, 100};
  {
    FixedStream balanced(geo, {{0, 0, 1, false}, {0, 150, 1, false}});
    EXPECT_NEAR(TraceStats::collect(balanced).disk_skew_cv(), 0.0, 1e-12);
  }
  {
    FixedStream skewed(geo, {{0, 0, 1, false}, {0, 1, 1, false}});
    EXPECT_NEAR(TraceStats::collect(skewed).disk_skew_cv(), 1.0, 1e-12);
  }
}

TEST(TraceStats, EmptyStream) {
  TraceGeometry geo{1, 10};
  FixedStream empty(geo, {});
  const TraceStats stats = TraceStats::collect(empty);
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.write_fraction(), 0.0);
  EXPECT_EQ(stats.disk_skew_cv(), 0.0);
}

TEST(TraceStats, TableRendering) {
  TraceGeometry geo{1, 100};
  FixedStream stream(geo, {{1000.0, 3, 1, true}});
  const TraceStats stats = TraceStats::collect(stream);
  const std::string out = TraceStats::table({&stats}, {"T"});
  EXPECT_NE(out.find("# of I/O accesses"), std::string::npos);
  EXPECT_NE(out.find("Write fraction"), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);
}

}  // namespace
}  // namespace raidsim
