// Binary ("RSTB") trace format: round trips, header validation,
// truncation detection, the prevalidated fast-path flag, and the
// format-sniffing open_trace() entry point.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/workloads.hpp"
#include "trace/trace_io.hpp"

namespace raidsim {
namespace {

std::unique_ptr<std::istream> text(const std::string& s) {
  return std::make_unique<std::istringstream>(s);
}

const char* kSmallText =
    "disks 2\n"
    "blocks_per_disk 100\n"
    "1500 5 1 R\n"
    "0 105 3 W\n"
    "250 42 2 R\n";

std::string to_binary(const std::string& trace_text) {
  TraceReader reader(text(trace_text));
  std::stringstream out(std::ios::in | std::ios::out | std::ios::binary);
  BinaryTraceWriter::write(reader, out);
  return out.str();
}

TEST(TraceBinary, RoundTripPreservesRecordsExactly) {
  const std::string bytes = to_binary(kSmallText);
  auto reader = BinaryTraceReader::from_buffer(bytes.data(), bytes.size());

  EXPECT_EQ(reader->geometry().data_disks, 2);
  EXPECT_EQ(reader->geometry().blocks_per_disk, 100);
  EXPECT_EQ(reader->record_count(), 3u);
  EXPECT_EQ(reader->size_hint(), 3u);

  TraceReader expect(text(kSmallText));
  for (int i = 0; i < 3; ++i) {
    auto want = expect.next();
    auto got = reader->next();
    ASSERT_TRUE(want && got) << "record " << i;
    // Deltas are stored as the f64 the text parser produced, so even the
    // floating-point bits survive the round trip.
    EXPECT_EQ(got->delta_ms, want->delta_ms);
    EXPECT_EQ(got->block, want->block);
    EXPECT_EQ(got->block_count, want->block_count);
    EXPECT_EQ(got->is_write, want->is_write);
  }
  EXPECT_FALSE(reader->next().has_value());
  EXPECT_EQ(reader->size_hint(), 0u);
}

TEST(TraceBinary, WriterStampsPrevalidatedFlag) {
  const std::string bytes = to_binary(kSmallText);
  BinaryTraceHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  EXPECT_TRUE(header.flags & BinaryTraceHeader::kPrevalidated);

  auto reader = BinaryTraceReader::from_buffer(bytes.data(), bytes.size());
  EXPECT_TRUE(reader->prevalidated());

  // The text reader (and streams generally) default to false.
  TraceReader fresh(text(kSmallText));
  EXPECT_FALSE(fresh.prevalidated());
}

TEST(TraceBinary, WriterRejectsOutOfBoundsRecords) {
  TraceReader reader(text("disks 1\n"
                          "blocks_per_disk 10\n"
                          "0 8 5 W\n"));  // blocks 8..12 overflow the disk
  std::stringstream out(std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_THROW(BinaryTraceWriter::write(reader, out), std::runtime_error);
}

TEST(TraceBinary, BadMagicRejected) {
  std::string bytes = to_binary(kSmallText);
  bytes[0] = 'X';
  EXPECT_THROW(BinaryTraceReader::from_buffer(bytes.data(), bytes.size()),
               std::runtime_error);
}

TEST(TraceBinary, UnsupportedVersionRejected) {
  std::string bytes = to_binary(kSmallText);
  BinaryTraceHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.version = 99;
  std::memcpy(bytes.data(), &header, sizeof(header));
  EXPECT_THROW(BinaryTraceReader::from_buffer(bytes.data(), bytes.size()),
               std::runtime_error);
}

TEST(TraceBinary, TruncationRejected) {
  const std::string bytes = to_binary(kSmallText);
  // Shorter than the header, and shorter than header + declared records.
  EXPECT_THROW(BinaryTraceReader::from_buffer(bytes.data(), 16),
               std::runtime_error);
  EXPECT_THROW(
      BinaryTraceReader::from_buffer(bytes.data(), bytes.size() - 1),
      std::runtime_error);
}

TEST(TraceBinary, EmptyTraceRoundTrips) {
  const std::string bytes = to_binary("disks 3\nblocks_per_disk 50\n");
  auto reader = BinaryTraceReader::from_buffer(bytes.data(), bytes.size());
  EXPECT_EQ(reader->geometry().data_disks, 3);
  EXPECT_EQ(reader->record_count(), 0u);
  EXPECT_FALSE(reader->next().has_value());
}

TEST(TraceBinary, FileRoundTripAndSniffing) {
  const std::string dir = ::testing::TempDir();
  const std::string binary_path = dir + "trace_binary_test.rstb";
  const std::string text_path = dir + "trace_binary_test.txt";

  {
    TraceReader reader(text(kSmallText));
    EXPECT_EQ(BinaryTraceWriter::write_file(reader, binary_path), 3u);
    std::ofstream out(text_path);
    out << kSmallText;
  }

  // open_trace() sniffs the magic and picks the right reader; both files
  // must replay to the same records.
  auto sniffed_binary = open_trace(binary_path);
  auto sniffed_text = open_trace(text_path);
  EXPECT_TRUE(sniffed_binary->prevalidated());
  EXPECT_FALSE(sniffed_text->prevalidated());
  for (int i = 0; i < 3; ++i) {
    auto a = sniffed_binary->next();
    auto b = sniffed_text->next();
    ASSERT_TRUE(a && b) << "record " << i;
    EXPECT_EQ(a->delta_ms, b->delta_ms);
    EXPECT_EQ(a->block, b->block);
    EXPECT_EQ(a->block_count, b->block_count);
    EXPECT_EQ(a->is_write, b->is_write);
  }
  EXPECT_FALSE(sniffed_binary->next().has_value());
  EXPECT_FALSE(sniffed_text->next().has_value());

  auto direct = BinaryTraceReader::open(binary_path);
  EXPECT_EQ(direct->record_count(), 3u);

  std::remove(binary_path.c_str());
  std::remove(text_path.c_str());
}

TEST(TraceBinary, SyntheticWorkloadRoundTripsThroughBinary) {
  WorkloadOptions wo;
  wo.scale = 0.002;
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  std::vector<TraceRecord> expected;
  {
    auto stream = make_workload("trace1", wo);
    auto copy = make_workload("trace1", wo);  // same seed -> same records
    while (auto r = copy->next()) expected.push_back(*r);
    EXPECT_EQ(BinaryTraceWriter::write(*stream, buffer), expected.size());
  }
  ASSERT_FALSE(expected.empty());

  const std::string bytes = buffer.str();
  auto reader = BinaryTraceReader::from_buffer(bytes.data(), bytes.size());
  EXPECT_EQ(reader->record_count(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    auto got = reader->next();
    ASSERT_TRUE(got) << "record " << i;
    EXPECT_EQ(got->delta_ms, expected[i].delta_ms);
    EXPECT_EQ(got->block, expected[i].block);
    EXPECT_EQ(got->block_count, expected[i].block_count);
    EXPECT_EQ(got->is_write, expected[i].is_write);
  }
  EXPECT_FALSE(reader->next().has_value());
}

}  // namespace
}  // namespace raidsim
