// Calibration invariants of the synthetic trace presets: the analytic
// stack-depth mixtures must hit the paper's published hit-ratio anchors
// (Figure 11), since the simulated LRU cache hit ratio at C blocks is
// approximately reuse_probability * P(stack depth < C).
//
// Trace 1 runs 13 arrays at the default N=10, so a per-array cache of C
// blocks corresponds to a global stack depth of ~13C.
#include <gtest/gtest.h>

#include "trace/synthetic.hpp"

namespace raidsim {
namespace {

constexpr double kBlocksPerMb = 256.0;  // 4 KB blocks

TEST(Calibration, Trace1ReadHitAnchors) {
  const TraceProfile p = TraceProfile::trace1();
  const double arrays = 13.0;
  // Paper: ~9% at 8 MB/array.
  const double hit_8mb =
      p.read_reuse_prob * p.read_depth.cdf(arrays * 8 * kBlocksPerMb);
  EXPECT_GT(hit_8mb, 0.05);
  EXPECT_LT(hit_8mb, 0.15);
  // Paper: ~54% at 256 MB/array.
  const double hit_256mb =
      p.read_reuse_prob * p.read_depth.cdf(arrays * 256 * kBlocksPerMb);
  EXPECT_GT(hit_256mb, 0.40);
  EXPECT_LT(hit_256mb, 0.62);
}

TEST(Calibration, Trace1WriteHitHighForLargeCaches) {
  const TraceProfile p = TraceProfile::trace1();
  // Paper: "the write hit ratio is almost one for large caches because
  // blocks are usually read by the transaction before being updated."
  const double hit_32mb =
      p.write_reuse_prob * p.write_depth.cdf(13.0 * 32 * kBlocksPerMb);
  EXPECT_GT(hit_32mb, 0.80);
}

TEST(Calibration, Trace2ReadHitAnchors) {
  const TraceProfile p = TraceProfile::trace2();
  // Paper: < 1% at 8 MB (single array).
  const double hit_8mb = p.read_reuse_prob * p.read_depth.cdf(8 * kBlocksPerMb);
  EXPECT_LT(hit_8mb, 0.03);
  // Paper: ~40% at 256 MB.
  const double hit_256mb =
      p.read_reuse_prob * p.read_depth.cdf(256 * kBlocksPerMb);
  EXPECT_GT(hit_256mb, 0.28);
  EXPECT_LT(hit_256mb, 0.50);
}

TEST(Calibration, Trace2WriteHitBand) {
  const TraceProfile p = TraceProfile::trace2();
  // Paper: ~20% at 8 MB rising past 60% at 256 MB.
  const double hit_8mb =
      p.write_reuse_prob * p.write_depth.cdf(8 * kBlocksPerMb);
  EXPECT_GT(hit_8mb, 0.12);
  EXPECT_LT(hit_8mb, 0.32);
  const double hit_256mb =
      p.write_reuse_prob * p.write_depth.cdf(256 * kBlocksPerMb);
  EXPECT_GT(hit_256mb, 0.50);
}

TEST(Calibration, Trace2MoreSkewedThanTrace1) {
  // Section 3.2: "Trace 2 exhibits more disk access skew than Trace 1."
  EXPECT_GT(TraceProfile::trace2().disk_skew_sigma,
            TraceProfile::trace1().disk_skew_sigma);
}

TEST(Calibration, Trace1MoreLocalThanTrace2) {
  // Section 3.2: "Trace 2 has less locality and larger working sets."
  const TraceProfile t1 = TraceProfile::trace1();
  const TraceProfile t2 = TraceProfile::trace2();
  EXPECT_GT(t1.read_reuse_prob, t2.read_reuse_prob);
  EXPECT_GT(t1.sequential_prob, t2.sequential_prob);
}

TEST(Calibration, ArrivalRatesMatchTable2) {
  // Table 2: 3.36 M I/Os in 3h03m and 69.5 k in 1h40m.
  EXPECT_NEAR(TraceProfile::trace1().arrival_rate_per_s(), 306.0, 5.0);
  EXPECT_NEAR(TraceProfile::trace2().arrival_rate_per_s(), 11.6, 0.5);
}

}  // namespace
}  // namespace raidsim
