#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/synthetic.hpp"

namespace raidsim {
namespace {

std::unique_ptr<std::istream> text(const std::string& s) {
  return std::make_unique<std::istringstream>(s);
}

TEST(TraceIo, ReadsWellFormedTrace) {
  TraceReader reader(text("# comment\n"
                          "disks 2\n"
                          "blocks_per_disk 100\n"
                          "1500 5 1 R\n"
                          "0 105 3 W\n"));
  EXPECT_EQ(reader.geometry().data_disks, 2);
  EXPECT_EQ(reader.geometry().blocks_per_disk, 100);

  auto r = reader.next();
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->delta_ms, 1.5, 1e-12);
  EXPECT_EQ(r->block, 5);
  EXPECT_EQ(r->block_count, 1);
  EXPECT_FALSE(r->is_write);

  r = reader.next();
  ASSERT_TRUE(r);
  EXPECT_EQ(r->block, 105);
  EXPECT_EQ(r->block_count, 3);
  EXPECT_TRUE(r->is_write);

  EXPECT_FALSE(reader.next().has_value());
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  TraceReader reader(text("disks 1\nblocks_per_disk 10\n\n# x\n0 0 1 R\n\n"));
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(TraceIo, MissingHeaderThrows) {
  EXPECT_THROW(TraceReader(text("0 0 1 R\n")), std::runtime_error);
  EXPECT_THROW(TraceReader(text("disks 4\n0 0 1 R\n")), std::runtime_error);
  EXPECT_THROW(TraceReader(text("")), std::runtime_error);
}

TEST(TraceIo, MalformedRecordsThrow) {
  auto make = [](const std::string& record) {
    return TraceReader(text("disks 1\nblocks_per_disk 10\n" + record));
  };
  {
    auto r = make("0 0 1 X\n");  // bad access type
    EXPECT_THROW(r.next(), std::runtime_error);
  }
  {
    auto r = make("0 20 1 R\n");  // block beyond the database
    EXPECT_THROW(r.next(), std::runtime_error);
  }
  {
    auto r = make("0 9 2 R\n");  // extent runs past the end
    EXPECT_THROW(r.next(), std::runtime_error);
  }
  {
    auto r = make("-5 0 1 R\n");  // negative delta
    EXPECT_THROW(r.next(), std::runtime_error);
  }
  {
    auto r = make("garbage\n");
    EXPECT_THROW(r.next(), std::runtime_error);
  }
}

TEST(TraceIo, RoundTripPreservesRecords) {
  TraceProfile profile = TraceProfile::trace2();
  profile.requests = 500;
  SyntheticTrace original(profile);

  std::ostringstream os;
  TraceWriter::write(original, os);

  SyntheticTrace reference(profile);
  TraceReader reader(text(os.str()));
  EXPECT_EQ(reader.geometry().data_disks, profile.geometry.data_disks);
  std::uint64_t n = 0;
  while (auto r = reader.next()) {
    const auto ref = reference.next();
    ASSERT_TRUE(ref);
    ASSERT_EQ(r->block, ref->block);
    ASSERT_EQ(r->block_count, ref->block_count);
    ASSERT_EQ(r->is_write, ref->is_write);
    // Deltas are stored at microsecond resolution.
    ASSERT_NEAR(r->delta_ms, ref->delta_ms, 1e-3);
    ++n;
  }
  EXPECT_EQ(n, 500u);
}

}  // namespace
}  // namespace raidsim
