#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/trace_stats.hpp"

namespace raidsim {
namespace {

TraceProfile small_profile() {
  TraceProfile p = TraceProfile::trace2();
  p.requests = 20000;
  p.duration_s *= 20000.0 / 69539.0;
  return p;
}

TEST(Synthetic, EmitsExactlyTheRequestedCount) {
  SyntheticTrace trace(small_profile());
  std::uint64_t n = 0;
  while (trace.next()) ++n;
  EXPECT_EQ(n, 20000u);
  EXPECT_FALSE(trace.next().has_value());
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticTrace a(small_profile()), b(small_profile());
  for (int i = 0; i < 5000; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    ASSERT_TRUE(ra && rb);
    ASSERT_EQ(ra->block, rb->block);
    ASSERT_EQ(ra->delta_ms, rb->delta_ms);
    ASSERT_EQ(ra->is_write, rb->is_write);
    ASSERT_EQ(ra->block_count, rb->block_count);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto p = small_profile();
  SyntheticTrace a(p);
  p.seed += 1;
  SyntheticTrace b(p);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next()->block == b.next()->block) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(Synthetic, RecordsWithinDatabaseBounds) {
  auto p = small_profile();
  SyntheticTrace trace(p);
  while (auto rec = trace.next()) {
    ASSERT_GE(rec->block, 0);
    ASSERT_LE(rec->block + rec->block_count, p.geometry.total_blocks());
    ASSERT_GE(rec->delta_ms, 0.0);
    ASSERT_GE(rec->block_count, 1);
    ASSERT_LE(rec->block_count, p.multiblock_max_blocks);
  }
}

TEST(Synthetic, RequestsNeverCrossOriginalDiskBoundaries) {
  auto p = small_profile();
  SyntheticTrace trace(p);
  while (auto rec = trace.next()) {
    const int first = p.geometry.disk_of(rec->block);
    const int last = p.geometry.disk_of(rec->block + rec->block_count - 1);
    ASSERT_EQ(first, last);
  }
}

TEST(Synthetic, WriteFractionMatchesProfile) {
  auto p = small_profile();
  SyntheticTrace trace(p);
  const TraceStats stats = TraceStats::collect(trace);
  // Trace 2 preset: ~28% writes overall (Table 2).
  EXPECT_NEAR(stats.write_fraction(), 0.28, 0.02);
}

TEST(Synthetic, MultiblockMixMatchesProfile) {
  auto p = small_profile();
  SyntheticTrace trace(p);
  const TraceStats stats = TraceStats::collect(trace);
  const double multi_fraction =
      static_cast<double>(stats.multiblock_reads + stats.multiblock_writes) /
      static_cast<double>(stats.requests);
  EXPECT_NEAR(multi_fraction, p.multiblock_fraction, 0.01);
  EXPECT_NEAR(stats.single_block_fraction(), 1.0 - p.multiblock_fraction,
              0.01);
}

TEST(Synthetic, DurationMatchesProfile) {
  auto p = small_profile();
  SyntheticTrace trace(p);
  const TraceStats stats = TraceStats::collect(trace);
  EXPECT_NEAR(stats.duration_ms / 1000.0, p.duration_s, p.duration_s * 0.2);
}

TEST(Synthetic, DiskAccessesSkewed) {
  auto p = small_profile();
  SyntheticTrace trace(p);
  const TraceStats stats = TraceStats::collect(trace);
  // Trace 2 exhibits heavy skew (Section 3.2).
  EXPECT_GT(stats.disk_skew_cv(), 0.4);
}

TEST(Synthetic, Trace1PresetMatchesTable2) {
  TraceProfile p = TraceProfile::trace1();
  EXPECT_EQ(p.geometry.data_disks, 130);
  EXPECT_EQ(p.requests, 3362505u);
  EXPECT_NEAR(p.duration_s, 10980.0, 1.0);

  // Scaled-down replica keeps the Table 2 ratios.
  p.requests = 50000;
  p.duration_s *= 50000.0 / 3362505.0;
  SyntheticTrace trace(p);
  const TraceStats stats = TraceStats::collect(trace);
  EXPECT_NEAR(stats.write_fraction(), 0.10, 0.02);
  // Blocks per request ~ 4.47M / 3.36M = 1.33.
  EXPECT_NEAR(static_cast<double>(stats.blocks_transferred) /
                  static_cast<double>(stats.requests),
              1.33, 0.12);
}

TEST(Synthetic, ByNameLookup) {
  EXPECT_EQ(TraceProfile::by_name("trace1").name, "trace1");
  EXPECT_EQ(TraceProfile::by_name("trace2").name, "trace2");
  EXPECT_THROW(TraceProfile::by_name("nope"), std::invalid_argument);
}

TEST(Synthetic, ValidatesProfile) {
  TraceProfile p = small_profile();
  p.requests = 0;
  EXPECT_THROW(SyntheticTrace{p}, std::invalid_argument);
  p = small_profile();
  p.geometry.data_disks = 0;
  EXPECT_THROW(SyntheticTrace{p}, std::invalid_argument);
}

TEST(SpeedAdapter, ScalesInterArrivalTimes) {
  auto p = small_profile();
  auto base = std::make_unique<SyntheticTrace>(p);
  SyntheticTrace reference(p);
  SpeedAdapter fast(std::move(base), 2.0);
  for (int i = 0; i < 1000; ++i) {
    const auto r = reference.next();
    const auto f = fast.next();
    ASSERT_NEAR(f->delta_ms, r->delta_ms / 2.0, 1e-12);
    ASSERT_EQ(f->block, r->block);
  }
}

TEST(PrefixAdapter, TruncatesStream) {
  auto p = small_profile();
  PrefixAdapter prefix(std::make_unique<SyntheticTrace>(p), 100);
  std::uint64_t n = 0;
  while (prefix.next()) ++n;
  EXPECT_EQ(n, 100u);
}

}  // namespace
}  // namespace raidsim
