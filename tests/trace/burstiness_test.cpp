// Arrival-process properties of the synthetic generator: bursts,
// clusters, and burst disk-affinity.
#include <gtest/gtest.h>

#include <cmath>

#include "trace/synthetic.hpp"

namespace raidsim {
namespace {

TraceProfile flat_profile() {
  TraceProfile p = TraceProfile::trace2();
  p.requests = 30000;
  p.duration_s = 3000.0;
  p.multiblock_fraction = 0.0;
  p.single_write_fraction = 0.0;
  p.read_reuse_prob = 0.0;  // every access fresh: affinity fully visible
  return p;
}

double same_disk_fraction(TraceProfile profile) {
  SyntheticTrace trace(profile);
  const auto& geo = profile.geometry;
  int same = 0, total = 0;
  int prev = -1;
  while (auto rec = trace.next()) {
    const int disk = geo.disk_of(rec->block);
    if (prev >= 0 && rec->delta_ms < 5.0) {  // within a burst
      ++total;
      same += disk == prev;
    }
    prev = disk;
  }
  return total ? static_cast<double>(same) / total : 0.0;
}

TEST(Burstiness, AffinityConcentratesBurstsOnDisks) {
  TraceProfile with = flat_profile();
  with.burst_disk_affinity = 0.6;
  TraceProfile without = flat_profile();
  without.burst_disk_affinity = 0.0;
  const double f_with = same_disk_fraction(with);
  const double f_without = same_disk_fraction(without);
  EXPECT_GT(f_with, f_without + 0.3);
}

TEST(Burstiness, InterArrivalsAreBimodal) {
  TraceProfile p = flat_profile();
  SyntheticTrace trace(p);
  std::uint64_t tiny = 0, large = 0, n = 0;
  while (auto rec = trace.next()) {
    ++n;
    if (rec->delta_ms < 4.0 * p.intra_burst_gap_ms) ++tiny;
    if (rec->delta_ms > 40.0 * p.intra_burst_gap_ms) ++large;
  }
  // Most arrivals are intra-burst, but a clear population of long gaps
  // separates bursts/clusters.
  EXPECT_GT(static_cast<double>(tiny) / n, 0.6);
  EXPECT_GT(static_cast<double>(large) / n, 0.01);
}

TEST(Burstiness, ClusteringPreservesTotalDuration) {
  TraceProfile p = TraceProfile::trace1();
  p.requests = 50000;
  p.duration_s = 50000.0 / TraceProfile::trace1().arrival_rate_per_s();
  SyntheticTrace trace(p);
  double total = 0.0;
  while (auto rec = trace.next()) total += rec->delta_ms;
  EXPECT_NEAR(total / 1000.0, p.duration_s, p.duration_s * 0.25);
}

}  // namespace
}  // namespace raidsim
