#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace_io.hpp"

namespace raidsim {
namespace {

std::unique_ptr<std::istream> text(const std::string& s) {
  return std::make_unique<std::istringstream>(s);
}

std::string error_of(const std::string& trace) {
  try {
    TraceReader reader(text(trace));
    while (reader.next()) {
    }
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "trace accepted: " << trace;
  return {};
}

const char* kHeader = "disks 2\nblocks_per_disk 100\n";

TEST(CorruptTrace, RecordBeforeHeaderNamesTheLine) {
  const auto msg = error_of("# comment\n0 0 1 R\n");
  EXPECT_NE(msg.find("before"), std::string::npos);
  EXPECT_NE(msg.find("line 2"), std::string::npos);
}

TEST(CorruptTrace, RecordBetweenDirectivesIsRejected) {
  const auto msg = error_of("disks 2\n0 0 1 R\nblocks_per_disk 100\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos);
}

TEST(CorruptTrace, UnknownDirectiveNamesItself) {
  const auto msg = error_of("disks 2\nsectors 99\nblocks_per_disk 100\n");
  EXPECT_NE(msg.find("sectors"), std::string::npos);
  EXPECT_NE(msg.find("line 2"), std::string::npos);
}

TEST(CorruptTrace, NonNumericHeaderValue) {
  const auto msg = error_of("disks two\nblocks_per_disk 100\n");
  EXPECT_NE(msg.find("disks"), std::string::npos);
  EXPECT_NE(msg.find("line 1"), std::string::npos);
}

TEST(CorruptTrace, HeaderDirectiveWithTrailingGarbage) {
  error_of("disks 2 4\nblocks_per_disk 100\n");
}

TEST(CorruptTrace, NonNumericRecordField) {
  const auto msg = error_of(std::string(kHeader) + "0 five 1 R\n");
  EXPECT_NE(msg.find("malformed record"), std::string::npos);
  EXPECT_NE(msg.find("line 3"), std::string::npos);
}

TEST(CorruptTrace, NegativeDeltaNamesTheProblem) {
  const auto msg = error_of(std::string(kHeader) + "-7 0 1 R\n");
  EXPECT_NE(msg.find("delta"), std::string::npos);
}

TEST(CorruptTrace, NegativeBlockAddress) {
  const auto msg = error_of(std::string(kHeader) + "0 -3 1 R\n");
  EXPECT_NE(msg.find("block address"), std::string::npos);
}

TEST(CorruptTrace, ZeroAndNegativeBlockCounts) {
  EXPECT_NE(error_of(std::string(kHeader) + "0 0 0 R\n").find("count"),
            std::string::npos);
  EXPECT_NE(error_of(std::string(kHeader) + "0 0 -2 W\n").find("count"),
            std::string::npos);
}

TEST(CorruptTrace, OverflowingDeltaIsRejected) {
  // Larger than int64: the extraction itself must fail, not wrap.
  error_of(std::string(kHeader) + "99999999999999999999999999 0 1 R\n");
}

TEST(CorruptTrace, OverflowingExtentDoesNotWrapPastTheBoundsCheck) {
  // block + count would overflow int64 and wrap negative; the reader
  // must still reject the extent.
  const auto msg = error_of(std::string(kHeader) +
                            "0 9223372036854775800 9 R\n");
  EXPECT_NE(msg.find("beyond"), std::string::npos);
}

TEST(CorruptTrace, ExtentPastEndOfDatabase) {
  error_of(std::string(kHeader) + "0 199 2 R\n");
  error_of(std::string(kHeader) + "0 200 1 W\n");
}

TEST(CorruptTrace, TrailingGarbageAfterRecord) {
  const auto msg = error_of(std::string(kHeader) + "0 0 1 R extra\n");
  EXPECT_NE(msg.find("trailing garbage"), std::string::npos);
  EXPECT_NE(msg.find("extra"), std::string::npos);
}

TEST(CorruptTrace, BadAccessTypeNamesTheCharacter) {
  const auto msg = error_of(std::string(kHeader) + "0 0 1 Q\n");
  EXPECT_NE(msg.find("'Q'"), std::string::npos);
}

TEST(CorruptTrace, CrlfLineEndingsAreAccepted) {
  TraceReader reader(text("disks 2\r\nblocks_per_disk 100\r\n0 5 1 W\r\n"));
  auto rec = reader.next();
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->block, 5);
  EXPECT_TRUE(rec->is_write);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(CorruptTrace, ErrorsOnLaterLinesCountCommentsAndBlanks) {
  const auto msg = error_of(std::string(kHeader) +
                            "0 0 1 R\n\n# fine so far\n0 0 1 Z\n");
  EXPECT_NE(msg.find("line 6"), std::string::npos);
}

}  // namespace
}  // namespace raidsim
