#include "disk/geometry.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

TEST(Geometry, Table1Defaults) {
  DiskGeometry g;
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.cylinders, 1260);
  EXPECT_EQ(g.sectors_per_track, 48);
  EXPECT_EQ(g.bytes_per_sector, 512);
  EXPECT_DOUBLE_EQ(g.rpm, 5400.0);
  // 5400 rpm -> 11.11 ms per revolution.
  EXPECT_NEAR(g.rotation_ms(), 11.1111, 1e-3);
  EXPECT_NEAR(g.sector_time_ms(), 11.1111 / 48.0, 1e-5);
  // Paper: "total capacity of each disk is about 0.9 GByte".
  EXPECT_NEAR(static_cast<double>(g.capacity_bytes()) / 1e9, 0.93, 0.05);
}

TEST(Geometry, DerivedCounts) {
  DiskGeometry g;
  EXPECT_EQ(g.sectors_per_cylinder(), 30 * 48);
  EXPECT_EQ(g.blocks_per_track(), 6);       // 48 sectors / 8-sector blocks
  EXPECT_EQ(g.blocks_per_cylinder(), 180);  // 30 tracks x 6
  EXPECT_EQ(g.total_blocks(), 1260ll * 180);
  EXPECT_EQ(g.block_bytes(), 4096);
}

TEST(Geometry, LocateBlockRoundTrip) {
  DiskGeometry g;
  for (std::int64_t block : {0ll, 1ll, 5ll, 6ll, 179ll, 180ll, 226799ll}) {
    const BlockAddress addr = g.locate_block(block);
    EXPECT_GE(addr.cylinder, 0);
    EXPECT_LT(addr.cylinder, g.cylinders);
    EXPECT_GE(addr.track, 0);
    EXPECT_LT(addr.track, g.tracks_per_cylinder);
    EXPECT_GE(addr.sector, 0);
    EXPECT_LT(addr.sector, g.sectors_per_track);
    // Invert the mapping.
    const std::int64_t sector =
        (static_cast<std::int64_t>(addr.cylinder) * g.tracks_per_cylinder +
         addr.track) *
            g.sectors_per_track +
        addr.sector;
    EXPECT_EQ(sector, block * g.block_sectors);
  }
}

TEST(Geometry, LocateBlockLayout) {
  DiskGeometry g;
  // Block 0: cylinder 0, track 0, sector 0.
  auto a = g.locate_block(0);
  EXPECT_EQ(a.cylinder, 0);
  EXPECT_EQ(a.track, 0);
  EXPECT_EQ(a.sector, 0);
  // Block 6 is the first block of track 1 (6 blocks per track).
  a = g.locate_block(6);
  EXPECT_EQ(a.cylinder, 0);
  EXPECT_EQ(a.track, 1);
  EXPECT_EQ(a.sector, 0);
  // Block 180 is the first block of cylinder 1.
  a = g.locate_block(180);
  EXPECT_EQ(a.cylinder, 1);
  EXPECT_EQ(a.track, 0);
}

TEST(Geometry, CylinderOfSector) {
  DiskGeometry g;
  EXPECT_EQ(g.cylinder_of_sector(0), 0);
  EXPECT_EQ(g.cylinder_of_sector(g.sectors_per_cylinder() - 1), 0);
  EXPECT_EQ(g.cylinder_of_sector(g.sectors_per_cylinder()), 1);
}

TEST(Geometry, InvalidConfigurations) {
  DiskGeometry g;
  g.cylinders = 0;
  EXPECT_FALSE(g.valid());
  g = DiskGeometry{};
  g.block_sectors = 7;  // must divide sectors_per_track
  EXPECT_FALSE(g.valid());
  g = DiskGeometry{};
  g.rpm = 0.0;
  EXPECT_FALSE(g.valid());
}

}  // namespace
}  // namespace raidsim
