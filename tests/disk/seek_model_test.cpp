#include "disk/seek_model.hpp"

#include <gtest/gtest.h>

namespace raidsim {
namespace {

TEST(SeekModel, CalibrationHitsTargetsExactly) {
  SeekSpec spec;  // Table 1: 11.2 ms average, 28 ms max
  const SeekModel model = SeekModel::calibrate(spec);
  EXPECT_NEAR(model.average_over_uniform(), spec.average_ms, 1e-9);
  EXPECT_NEAR(model.seek_time(spec.cylinders - 1), spec.max_ms, 1e-9);
  EXPECT_DOUBLE_EQ(model.seek_time(1), spec.single_cylinder_ms);
}

TEST(SeekModel, ZeroDistanceIsFree) {
  const SeekModel model = SeekModel::calibrate(SeekSpec{});
  EXPECT_DOUBLE_EQ(model.seek_time(0), 0.0);
}

TEST(SeekModel, MonotoneNonDecreasing) {
  const SeekModel model = SeekModel::calibrate(SeekSpec{});
  double prev = 0.0;
  for (int d = 1; d < 1260; ++d) {
    const double t = model.seek_time(d);
    ASSERT_GE(t, prev) << "d=" << d;
    prev = t;
  }
}

TEST(SeekModel, PositiveCoefficients) {
  const SeekModel model = SeekModel::calibrate(SeekSpec{});
  EXPECT_GT(model.a(), 0.0);
  EXPECT_GT(model.b(), 0.0);
  EXPECT_GT(model.c(), 0.0);
}

TEST(SeekModel, SublinearShortSeeks) {
  // The sqrt term dominates short seeks: doubling a short distance should
  // much less than double the time above the settle constant.
  const SeekModel model = SeekModel::calibrate(SeekSpec{});
  const double t10 = model.seek_time(10) - model.seek_time(1);
  const double t20 = model.seek_time(20) - model.seek_time(1);
  EXPECT_LT(t20, 2.0 * t10);
}

TEST(SeekModel, CalibratesOtherGeometries) {
  SeekSpec spec;
  spec.cylinders = 2000;
  spec.average_ms = 9.0;
  spec.max_ms = 20.0;
  spec.single_cylinder_ms = 1.5;
  const SeekModel model = SeekModel::calibrate(spec);
  EXPECT_NEAR(model.average_over_uniform(), 9.0, 1e-9);
  EXPECT_NEAR(model.seek_time(1999), 20.0, 1e-9);
}

TEST(SeekModel, RejectsInfeasibleSpecs) {
  SeekSpec spec;
  spec.average_ms = 27.0;  // average nearly at max -> negative coefficients
  EXPECT_THROW(SeekModel::calibrate(spec), std::runtime_error);
  SeekSpec tiny;
  tiny.cylinders = 2;
  EXPECT_THROW(SeekModel::calibrate(tiny), std::invalid_argument);
}

}  // namespace
}  // namespace raidsim
