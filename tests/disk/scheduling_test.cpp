// Disk queue scheduling policies: FIFO (the paper's model), SSTF, SCAN.
#include <gtest/gtest.h>

#include <vector>

#include "disk/disk.hpp"

namespace raidsim {
namespace {

class SchedulingTest : public ::testing::Test {
 protected:
  SchedulingTest() : seek_(SeekModel::calibrate(SeekSpec{})) {}

  std::unique_ptr<Disk> make(DiskScheduling scheduling) {
    return std::make_unique<Disk>(eq_, geo_, &seek_, 0, scheduling);
  }

  /// Submit single-block reads at the first block of each cylinder and
  /// return the order (by cylinder) in which they completed. The first
  /// request occupies the disk (parking the head at `occupy_cyl`) so the
  /// rest queue and are reordered by the policy.
  std::vector<int> service_order(Disk& disk, const std::vector<int>& cyls,
                                 int occupy_cyl = 0) {
    std::vector<int> order;
    DiskRequest head;
    head.kind = DiskOpKind::kRead;
    head.start_block =
        static_cast<std::int64_t>(occupy_cyl) * geo_.blocks_per_cylinder();
    disk.submit(std::move(head));
    for (int cyl : cyls) {
      DiskRequest req;
      req.kind = DiskOpKind::kRead;
      req.start_block =
          static_cast<std::int64_t>(cyl) * geo_.blocks_per_cylinder();
      req.on_complete = [&order, cyl](SimTime) { order.push_back(cyl); };
      disk.submit(std::move(req));
    }
    eq_.run();
    return order;
  }

  EventQueue eq_;
  DiskGeometry geo_;
  SeekModel seek_;
};

TEST_F(SchedulingTest, Names) {
  EXPECT_EQ(to_string(DiskScheduling::kFifo), "FIFO");
  EXPECT_EQ(to_string(DiskScheduling::kSstf), "SSTF");
  EXPECT_EQ(to_string(DiskScheduling::kScan), "SCAN");
}

TEST_F(SchedulingTest, FifoServesArrivalOrder) {
  auto disk = make(DiskScheduling::kFifo);
  EXPECT_EQ(service_order(*disk, {900, 100, 500, 50}),
            (std::vector<int>{900, 100, 500, 50}));
}

TEST_F(SchedulingTest, SstfServesNearestFirst) {
  auto disk = make(DiskScheduling::kSstf);
  // Head parks at cylinder 0 after the occupying read; SSTF then climbs.
  EXPECT_EQ(service_order(*disk, {900, 100, 500, 50}),
            (std::vector<int>{50, 100, 500, 900}));
}

TEST_F(SchedulingTest, ScanSweepsUpThenReverses) {
  auto disk = make(DiskScheduling::kScan);
  // Head parked at cylinder 300: the upward sweep takes 400 and 900,
  // then reverses for 200 and 100.
  EXPECT_EQ(service_order(*disk, {100, 400, 900, 200}, /*occupy_cyl=*/300),
            (std::vector<int>{400, 900, 200, 100}));
}

TEST_F(SchedulingTest, SstfReducesTotalSeekVersusFifo) {
  const std::vector<int> pattern{1200, 3, 1100, 7, 1000, 11, 900, 13};
  auto run_policy = [&](DiskScheduling policy) {
    EventQueue eq;
    Disk disk(eq, geo_, &seek_, 0, policy);
    DiskRequest head;
    head.kind = DiskOpKind::kRead;
    head.start_block = 0;
    disk.submit(std::move(head));
    for (int cyl : pattern) {
      DiskRequest req;
      req.kind = DiskOpKind::kRead;
      req.start_block =
          static_cast<std::int64_t>(cyl) * geo_.blocks_per_cylinder();
      disk.submit(std::move(req));
    }
    eq.run();
    return disk.stats().seek_ms;
  };
  EXPECT_LT(run_policy(DiskScheduling::kSstf),
            run_policy(DiskScheduling::kFifo));
}

TEST_F(SchedulingTest, PriorityStillDominatesScheduling) {
  auto disk = make(DiskScheduling::kSstf);
  std::vector<int> order;
  DiskRequest head;
  head.kind = DiskOpKind::kRead;
  head.start_block = 0;
  disk->submit(std::move(head));
  // A distant high-priority request must be served before a near
  // low-priority one.
  DiskRequest near;
  near.kind = DiskOpKind::kRead;
  near.start_block = geo_.blocks_per_cylinder();  // cylinder 1
  near.priority = DiskPriority::kDestage;
  near.on_complete = [&order](SimTime) { order.push_back(1); };
  disk->submit(std::move(near));
  DiskRequest far;
  far.kind = DiskOpKind::kRead;
  far.start_block = 1000ll * geo_.blocks_per_cylinder();
  far.priority = DiskPriority::kNormal;
  far.on_complete = [&order](SimTime) { order.push_back(1000); };
  disk->submit(std::move(far));
  eq_.run();
  EXPECT_EQ(order, (std::vector<int>{1000, 1}));
}

}  // namespace
}  // namespace raidsim
