// Cross-validation of the disk server against queueing theory: a single
// disk fed Poisson arrivals of uniformly random single-block reads is an
// M/G/1 queue, so the simulated mean response must match the
// Pollaczek-Khinchine formula computed from the service-time moments.
#include <gtest/gtest.h>

#include "disk/disk.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace raidsim {
namespace {

struct ServiceMoments {
  double mean = 0.0;
  double second = 0.0;
};

/// Analytic service-time sample for a random read: seek over the
/// uniform-pair distance distribution + uniform rotational latency +
/// one-block transfer.
ServiceMoments sample_service_moments(const DiskGeometry& geo,
                                      const SeekModel& seek, int samples) {
  Rng rng(4242);
  OnlineStats stats;
  double second = 0.0;
  const double rotation = geo.rotation_ms();
  const double transfer = 8.0 * geo.sector_time_ms();
  int prev = static_cast<int>(rng.uniform_u64(
      static_cast<std::uint64_t>(geo.cylinders)));
  for (int i = 0; i < samples; ++i) {
    const int next = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(geo.cylinders)));
    const double s = seek.seek_time(std::abs(next - prev)) +
                     rng.uniform() * rotation + transfer;
    prev = next;
    stats.add(s);
    second += s * s;
  }
  return {stats.mean(), second / samples};
}

TEST(QueueingTheory, MatchesPollaczekKhinchine) {
  EventQueue eq;
  DiskGeometry geo;
  const SeekModel seek = SeekModel::calibrate(SeekSpec{});
  Disk disk(eq, geo, &seek, 0);

  const auto moments = sample_service_moments(geo, seek, 200000);
  const double target_rho = 0.5;
  const double lambda = target_rho / moments.mean;  // arrivals per ms

  // Open-loop Poisson arrivals of uniformly random single-block reads.
  Rng rng(99);
  const int n = 60000;
  OnlineStats response;
  double arrival = 0.0;
  for (int i = 0; i < n; ++i) {
    arrival += rng.exponential(1.0 / lambda);
    const std::int64_t block = static_cast<std::int64_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(geo.total_blocks())));
    eq.schedule_at(arrival, [&disk, &response, block, &eq] {
      const double issued = eq.now();
      DiskRequest req;
      req.kind = DiskOpKind::kRead;
      req.start_block = block;
      req.on_complete = [&response, issued](SimTime t) {
        response.add(t - issued);
      };
      disk.submit(std::move(req));
    });
  }
  eq.run();
  ASSERT_EQ(response.count(), static_cast<std::uint64_t>(n));

  const double rho = lambda * moments.mean;
  const double pk_wait = lambda * moments.second / (2.0 * (1.0 - rho));
  const double pk_response = moments.mean + pk_wait;

  // The simulated service process deviates mildly from i.i.d. (the seek
  // depends on the previous landing position under queueing), so allow a
  // 12% band.
  EXPECT_NEAR(response.mean(), pk_response, pk_response * 0.12)
      << "rho=" << rho << " E[S]=" << moments.mean
      << " PK wait=" << pk_wait;
  // Utilization must match rho closely (work conservation).
  EXPECT_NEAR(disk.stats().utilization(eq.now()), rho, 0.03);
}

TEST(QueueingTheory, LowLoadResponseApproachesServiceTime) {
  EventQueue eq;
  DiskGeometry geo;
  const SeekModel seek = SeekModel::calibrate(SeekSpec{});
  Disk disk(eq, geo, &seek, 0);
  const auto moments = sample_service_moments(geo, seek, 100000);

  Rng rng(7);
  OnlineStats response;
  double arrival = 0.0;
  for (int i = 0; i < 20000; ++i) {
    arrival += rng.exponential(50.0 * moments.mean);  // rho = 0.02
    const std::int64_t block = static_cast<std::int64_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(geo.total_blocks())));
    eq.schedule_at(arrival, [&disk, &response, block, &eq] {
      const double issued = eq.now();
      DiskRequest req;
      req.kind = DiskOpKind::kRead;
      req.start_block = block;
      req.on_complete = [&response, issued](SimTime t) {
        response.add(t - issued);
      };
      disk.submit(std::move(req));
    });
  }
  eq.run();
  EXPECT_NEAR(response.mean(), moments.mean, moments.mean * 0.05);
}

}  // namespace
}  // namespace raidsim
