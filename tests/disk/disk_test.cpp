#include "disk/disk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace raidsim {
namespace {

class DiskTest : public ::testing::Test {
 protected:
  DiskTest() : seek_(SeekModel::calibrate(SeekSpec{})), disk_(eq_, geo_, &seek_, 0) {}

  double sector_ms() const { return geo_.sector_time_ms(); }
  double rotation_ms() const { return geo_.rotation_ms(); }
  double block_xfer_ms() const { return 8.0 * sector_ms(); }

  EventQueue eq_;
  DiskGeometry geo_;
  SeekModel seek_;
  Disk disk_;
};

TEST_F(DiskTest, ReadAtHeadPositionIsLatencyFree) {
  // Block 0 at time 0: no seek, head is angularly at sector 0, so the
  // access is pure transfer.
  double completed = -1.0;
  DiskRequest req;
  req.kind = DiskOpKind::kRead;
  req.start_block = 0;
  req.on_complete = [&](SimTime t) { completed = t; };
  disk_.submit(std::move(req));
  eq_.run();
  EXPECT_NEAR(completed, block_xfer_ms(), 1e-9);
  EXPECT_EQ(disk_.stats().reads, 1u);
  EXPECT_NEAR(disk_.stats().busy_ms, block_xfer_ms(), 1e-9);
  EXPECT_NEAR(disk_.stats().seek_ms, 0.0, 1e-12);
  EXPECT_NEAR(disk_.stats().latency_ms, 0.0, 1e-12);
}

TEST_F(DiskTest, SeekAndRotationalLatencyAccounted) {
  // First block of cylinder 5: seek(5), then wait for sector 0 to come
  // around again.
  const std::int64_t block = 5ll * geo_.blocks_per_cylinder();
  double completed = -1.0;
  DiskRequest req;
  req.kind = DiskOpKind::kRead;
  req.start_block = block;
  req.on_complete = [&](SimTime t) { completed = t; };
  disk_.submit(std::move(req));
  eq_.run();

  const double seek = seek_.seek_time(5);
  double latency = -std::fmod(seek, rotation_ms());
  if (latency < 0.0) latency += rotation_ms();
  EXPECT_NEAR(completed, seek + latency + block_xfer_ms(), 1e-9);
  EXPECT_EQ(disk_.current_cylinder(), 5);
}

TEST_F(DiskTest, WriteTimingEqualsReadTiming) {
  double completed = -1.0;
  DiskRequest req;
  req.kind = DiskOpKind::kWrite;
  req.start_block = 0;
  req.on_complete = [&](SimTime t) { completed = t; };
  disk_.submit(std::move(req));
  eq_.run();
  EXPECT_NEAR(completed, block_xfer_ms(), 1e-9);
  EXPECT_EQ(disk_.stats().writes, 1u);
}

TEST_F(DiskTest, RmwWritesExactlyOneRevolutionAfterRead) {
  // Paper, Section 3.3: read the old block, wait a full rotation, write
  // the new block in place.
  double read_done = -1.0, completed = -1.0;
  DiskRequest req;
  req.kind = DiskOpKind::kReadModifyWrite;
  req.start_block = 0;
  req.gate = WriteGate::already_open(eq_.op_arena());
  req.on_read_done = [&](SimTime t) { read_done = t; };
  req.on_complete = [&](SimTime t) { completed = t; };
  disk_.submit(std::move(req));
  eq_.run();
  EXPECT_NEAR(read_done, block_xfer_ms(), 1e-9);
  // Write begins when the head returns to the block start: t = rotation.
  EXPECT_NEAR(completed, rotation_ms() + block_xfer_ms(), 1e-9);
  EXPECT_EQ(disk_.stats().rmws, 1u);
  EXPECT_EQ(disk_.stats().held_rotations, 0u);
}

TEST_F(DiskTest, RmwHeldByClosedGateSpinsWholeRotations) {
  auto gate = make_op<WriteGate>(eq_.op_arena());
  double completed = -1.0;
  DiskRequest req;
  req.kind = DiskOpKind::kReadModifyWrite;
  req.start_block = 0;
  req.gate = gate;
  req.on_complete = [&](SimTime t) { completed = t; };
  disk_.submit(std::move(req));
  // Open the gate 30 ms in: the write must start at the next whole
  // revolution boundary after that, i.e. 3 * rotation.
  eq_.schedule_at(30.0, [&] { gate->open(eq_.now()); });
  eq_.run();
  EXPECT_NEAR(completed, 3.0 * rotation_ms() + block_xfer_ms(), 1e-9);
  EXPECT_EQ(disk_.stats().held_rotations, 2u);
  EXPECT_NEAR(disk_.stats().hold_ms, 2.0 * rotation_ms(), 1e-9);
}

TEST_F(DiskTest, GateOpenedBeforeReadEndDoesNotHold) {
  auto gate = make_op<WriteGate>(eq_.op_arena());
  double completed = -1.0;
  DiskRequest req;
  req.kind = DiskOpKind::kReadModifyWrite;
  req.start_block = 0;
  req.gate = gate;
  req.on_complete = [&](SimTime t) { completed = t; };
  disk_.submit(std::move(req));
  eq_.schedule_at(0.5, [&] { gate->open(eq_.now()); });
  eq_.run();
  EXPECT_NEAR(completed, rotation_ms() + block_xfer_ms(), 1e-9);
  EXPECT_EQ(disk_.stats().held_rotations, 0u);
}

TEST_F(DiskTest, LargeRmwNeedsMultipleRevolutionsBeforeRewrite) {
  // A 60-sector extent takes more than one revolution to read, so the
  // in-place write can start no earlier than 2 revolutions in.
  double completed = -1.0;
  DiskRequest req;
  req.kind = DiskOpKind::kReadModifyWrite;
  req.start_block = 0;
  req.block_count = 10;  // 80 sectors > 48 per revolution
  req.gate = WriteGate::already_open(eq_.op_arena());
  req.on_complete = [&](SimTime t) { completed = t; };
  disk_.submit(std::move(req));
  eq_.run();
  EXPECT_NEAR(completed, 2.0 * rotation_ms() + 80.0 * sector_ms(), 1e-9);
}

TEST_F(DiskTest, RmwAcrossCylinderBoundaryIsRejected) {
  DiskRequest req;
  req.kind = DiskOpKind::kReadModifyWrite;
  req.start_block = geo_.blocks_per_cylinder() - 1;
  req.block_count = 2;
  req.gate = WriteGate::already_open(eq_.op_arena());
  // The disk is idle, so service planning happens inside submit().
  EXPECT_THROW(disk_.submit(std::move(req)), std::logic_error);
}

TEST_F(DiskTest, PriorityOrderBeatsFifo) {
  std::vector<int> order;
  auto make = [&](DiskPriority prio, int tag) {
    DiskRequest req;
    req.kind = DiskOpKind::kRead;
    req.start_block = 0;
    req.priority = prio;
    req.on_complete = [&order, tag](SimTime) { order.push_back(tag); };
    return req;
  };
  // First request occupies the disk; the rest queue and are reordered.
  disk_.submit(make(DiskPriority::kNormal, 0));
  disk_.submit(make(DiskPriority::kDestage, 1));
  disk_.submit(make(DiskPriority::kNormal, 2));
  disk_.submit(make(DiskPriority::kParity, 3));
  eq_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 3, 2, 1}));
}

TEST_F(DiskTest, FifoWithinPriorityClass) {
  std::vector<int> order;
  for (int tag = 0; tag < 4; ++tag) {
    DiskRequest req;
    req.kind = DiskOpKind::kRead;
    req.start_block = 0;
    req.on_complete = [&order, tag](SimTime) { order.push_back(tag); };
    disk_.submit(std::move(req));
  }
  eq_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(DiskTest, OnStartFiresWhenServiceBegins) {
  double first_start = -1.0, second_start = -1.0;
  DiskRequest a;
  a.kind = DiskOpKind::kRead;
  a.start_block = 0;
  a.on_start = [&](SimTime t) { first_start = t; };
  disk_.submit(std::move(a));
  DiskRequest b;
  b.kind = DiskOpKind::kRead;
  b.start_block = 0;
  b.on_start = [&](SimTime t) { second_start = t; };
  disk_.submit(std::move(b));
  eq_.run();
  EXPECT_NEAR(first_start, 0.0, 1e-12);
  // Second starts exactly when the first completes.
  EXPECT_NEAR(second_start, block_xfer_ms(), 1e-9);
}

TEST_F(DiskTest, QueueingDelayAccounted) {
  for (int i = 0; i < 3; ++i) {
    DiskRequest req;
    req.kind = DiskOpKind::kRead;
    req.start_block = 0;
    disk_.submit(std::move(req));
  }
  EXPECT_EQ(disk_.queue_length(), 2u);  // one in service
  eq_.run();
  EXPECT_GT(disk_.stats().queue_ms, 0.0);
  EXPECT_EQ(disk_.stats().reads, 3u);
}

TEST_F(DiskTest, ReadSpanningCylindersEndsAtLastCylinder) {
  double completed = -1.0;
  DiskRequest req;
  req.kind = DiskOpKind::kRead;
  req.start_block = geo_.blocks_per_cylinder() - 1;
  req.block_count = 3;  // crosses into cylinder 1
  req.on_complete = [&](SimTime t) { completed = t; };
  disk_.submit(std::move(req));
  eq_.run();
  EXPECT_GT(completed, 0.0);
  EXPECT_EQ(disk_.current_cylinder(), 1);
  // Crossing adds a single-cylinder seek plus realignment.
  EXPECT_GE(disk_.stats().seek_ms, seek_.seek_time(1));
}

TEST_F(DiskTest, UtilizationIsBusyFraction) {
  DiskRequest req;
  req.kind = DiskOpKind::kRead;
  req.start_block = 0;
  disk_.submit(std::move(req));
  eq_.run();
  const double elapsed = eq_.now();
  EXPECT_NEAR(disk_.stats().utilization(elapsed), 1.0, 1e-9);
  EXPECT_NEAR(disk_.stats().utilization(2.0 * elapsed), 0.5, 1e-9);
}

TEST_F(DiskTest, BusyFlagTracksService) {
  EXPECT_FALSE(disk_.busy());
  DiskRequest req;
  req.kind = DiskOpKind::kRead;
  req.start_block = 0;
  disk_.submit(std::move(req));
  EXPECT_TRUE(disk_.busy());
  eq_.run();
  EXPECT_FALSE(disk_.busy());
}

}  // namespace
}  // namespace raidsim
