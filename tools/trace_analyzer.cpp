// trace_analyzer: offline analysis of raidsim Chrome-trace JSON.
//
// Reads a `<prefix>.trace.json` written by write_chrome_trace() and prints
//   * the per-phase latency breakdown of the disk service slices
//     (read-data / read-old-data / read-old-parity / write-data /
//     write-parity / mirror-copy),
//   * the queueing-vs-service decomposition of every disk operation,
//   * host-request response statistics per request class, and
//   * the top-N slowest host requests.
//
// The parser below handles exactly the JSON subset the exporter emits
// (objects, arrays, double-quoted strings without escapes, numbers); no
// third-party dependency is needed or wanted.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace {

// ---------------------------------------------------------------- JSON

struct JsonEvent {
  std::string name;
  std::string cat;
  char ph = 0;          // X, b, e, i, C, M
  double ts = 0.0;      // microseconds
  double dur = 0.0;     // microseconds (X only)
  std::uint64_t id = 0; // async id / span arg
  int pid = -1;
  int tid = -1;
};

class Scanner {
 public:
  explicit Scanner(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }

  bool eof() {
    skip_ws();
    return i_ >= s_.size();
  }

  char peek() {
    skip_ws();
    return i_ < s_.size() ? s_[i_] : '\0';
  }

  void expect(char c) {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != c)
      fail(std::string("expected '") + c + "'");
    ++i_;
  }

  bool consume(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) ++i_;  // keep escaped char
      out.push_back(s_[i_++]);
    }
    expect('"');
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* start = s_.c_str() + i_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) fail("expected number");
    i_ += static_cast<std::size_t>(end - start);
    return v;
  }

  /// Skip any value (used for args/otherData we don't analyze).
  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      parse_string();
    } else if (c == '{') {
      expect('{');
      if (!consume('}')) {
        do {
          parse_string();
          expect(':');
          skip_value();
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      expect('[');
      if (!consume(']')) {
        do {
          skip_value();
        } while (consume(','));
        expect(']');
      }
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (i_ < s_.size() &&
             std::isalpha(static_cast<unsigned char>(s_[i_])))
        ++i_;
    } else {
      parse_number();
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    std::size_t line = 1;
    for (std::size_t j = 0; j < i_ && j < s_.size(); ++j)
      if (s_[j] == '\n') ++line;
    std::ostringstream os;
    os << "trace_analyzer: JSON parse error (line " << line << "): " << what;
    throw std::runtime_error(os.str());
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
};

JsonEvent parse_event(Scanner& sc) {
  JsonEvent e;
  sc.expect('{');
  if (!sc.consume('}')) {
    do {
      const std::string key = sc.parse_string();
      sc.expect(':');
      if (key == "name") {
        e.name = sc.parse_string();
      } else if (key == "cat") {
        e.cat = sc.parse_string();
      } else if (key == "ph") {
        const std::string ph = sc.parse_string();
        if (ph.empty()) sc.fail("empty \"ph\" value");
        e.ph = ph[0];
      } else if (key == "ts") {
        e.ts = sc.parse_number();
      } else if (key == "dur") {
        e.dur = sc.parse_number();
      } else if (key == "id") {
        e.id = static_cast<std::uint64_t>(sc.parse_number());
      } else if (key == "pid") {
        e.pid = static_cast<int>(sc.parse_number());
      } else if (key == "tid") {
        e.tid = static_cast<int>(sc.parse_number());
      } else {
        sc.skip_value();
      }
    } while (sc.consume(','));
    sc.expect('}');
  }
  return e;
}

// ------------------------------------------------------------- analysis

struct PhaseStats {
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  std::vector<double> samples;  // for percentiles

  void add(double ms) {
    ++count;
    total_ms += ms;
    max_ms = std::max(max_ms, ms);
    samples.push_back(ms);
  }
  double mean() const {
    return count ? total_ms / static_cast<double>(count) : 0.0;
  }
  double percentile(double p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(samples.size() - 1));
    return samples[idx];
  }
};

struct HostSpan {
  std::string name;
  int array = -1;
  double begin_us = 0.0;
  double end_us = -1.0;
  std::uint64_t id = 0;
  double duration_ms() const { return (end_us - begin_us) / 1e3; }
};

void print_phase_table(const char* title,
                       std::map<std::string, PhaseStats>& stats) {
  std::printf("\n%s\n", title);
  std::printf("  %-16s %10s %10s %10s %10s %10s\n", "phase", "count",
              "mean ms", "p95 ms", "max ms", "total ms");
  for (auto& [name, s] : stats)
    std::printf("  %-16s %10llu %10.3f %10.3f %10.3f %10.1f\n", name.c_str(),
                static_cast<unsigned long long>(s.count), s.mean(),
                s.percentile(0.95), s.max_ms, s.total_ms);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top_n = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--top=", 0) == 0) {
      top_n = static_cast<std::size_t>(std::stoul(arg.substr(6)));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: trace_analyzer [--top=N] <trace.json>\n");
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_analyzer [--top=N] <trace.json>\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_analyzer: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::map<std::string, PhaseStats> service;     // X slices by phase name
  std::map<std::string, PhaseStats> queueing;    // queue spans
  std::map<std::string, PhaseStats> background;  // destage/rebuild/recovery
  std::map<std::string, PhaseStats> host;        // host-read / host-write
  std::map<std::string, std::uint64_t> instants;
  std::unordered_map<std::uint64_t, JsonEvent> open_async;
  std::vector<HostSpan> host_spans;
  std::uint64_t events = 0, counters = 0, unmatched = 0;

  try {
    Scanner sc(text);
    sc.expect('{');
    bool found = false;
    do {
      const std::string key = sc.parse_string();
      sc.expect(':');
      if (key != "traceEvents") {
        sc.skip_value();
        continue;
      }
      found = true;
      sc.expect('[');
      if (!sc.consume(']')) {
        do {
          JsonEvent e = parse_event(sc);
          ++events;
          switch (e.ph) {
            case 'X':
              service[e.name].add(e.dur / 1e3);
              break;
            case 'b':
              // Key by async id; host/queue/... ids never collide (one
              // id space for all spans).
              open_async[e.id] = e;
              break;
            case 'e': {
              auto it = open_async.find(e.id);
              if (it == open_async.end()) {
                ++unmatched;
                break;
              }
              const JsonEvent& b = it->second;
              const double ms = (e.ts - b.ts) / 1e3;
              if (b.cat == "host") {
                host[b.name].add(ms);
                host_spans.push_back(
                    HostSpan{b.name, b.pid - 1, b.ts, e.ts, e.id});
              } else if (b.cat == "queue") {
                queueing[b.name].add(ms);
              } else {
                background[b.name].add(ms);
              }
              open_async.erase(it);
              break;
            }
            case 'i':
              ++instants[e.name];
              break;
            case 'C':
              ++counters;
              break;
            default:
              break;  // metadata
          }
        } while (sc.consume(','));
        sc.expect(']');
      }
    } while (sc.consume(','));
    // A truncated or corrupt file must not half-parse silently: the
    // document has to close its top-level object and then end.
    sc.expect('}');
    if (!sc.eof()) sc.fail("trailing data after top-level object");
    if (!found) {
      std::fprintf(stderr, "trace_analyzer: no traceEvents array in %s\n",
                   path.c_str());
      return 2;
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "%s\n", ex.what());
    return 1;
  }

  std::printf("trace: %s\n", path.c_str());
  std::printf("events: %llu (counter samples: %llu, still-open spans: %zu, "
              "unmatched ends: %llu)\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(counters), open_async.size(),
              static_cast<unsigned long long>(unmatched));

  // Host-level statistics: the mean here must agree with the simulator's
  // Metrics::mean_response_ms (the differential acceptance check).
  double host_total = 0.0;
  std::uint64_t host_count = 0;
  for (auto& [name, s] : host) {
    host_total += s.total_ms;
    host_count += s.count;
  }
  if (host_count)
    std::printf("host requests: %llu, mean response %.6f ms\n",
                static_cast<unsigned long long>(host_count),
                host_total / static_cast<double>(host_count));
  print_phase_table("host request classes:", host);

  // Queueing-vs-service decomposition of the disk operations.
  print_phase_table("disk service phases:", service);
  print_phase_table("disk queueing:", queueing);
  double q_total = 0.0, s_total = 0.0;
  std::uint64_t s_count = 0;
  for (auto& [name, s] : queueing) q_total += s.total_ms;
  for (auto& [name, s] : service) {
    s_total += s.total_ms;
    s_count += s.count;
  }
  if (s_count)
    std::printf("\nqueueing vs service: %.1f ms queued vs %.1f ms in service"
                " (%.1f%% of disk time is queueing)\n",
                q_total, s_total,
                100.0 * q_total / std::max(1e-12, q_total + s_total));

  if (!background.empty())
    print_phase_table("controller background spans:", background);

  if (!instants.empty()) {
    std::printf("\nmarkers:\n");
    for (const auto& [name, count] : instants)
      std::printf("  %-16s %10llu\n", name.c_str(),
                  static_cast<unsigned long long>(count));
  }

  // Tail-tolerance activity (fail-slow policies): how often the
  // controller hedged, timed out, or redirected around a slow disk, and
  // what fraction of hedges beat the primary.
  const std::uint64_t hedges = instants.count("hedge-issued")
                                   ? instants.at("hedge-issued") : 0;
  const std::uint64_t hedge_wins = instants.count("hedge-won")
                                       ? instants.at("hedge-won") : 0;
  const std::uint64_t timeouts = instants.count("timeout-fired")
                                     ? instants.at("timeout-fired") : 0;
  const std::uint64_t redirects = instants.count("redirected")
                                      ? instants.at("redirected") : 0;
  if (hedges || timeouts || redirects) {
    std::printf("\ntail tolerance:\n");
    std::printf("  hedges issued   %10llu\n",
                static_cast<unsigned long long>(hedges));
    std::printf("  hedge wins      %10llu (%.1f%%)\n",
                static_cast<unsigned long long>(hedge_wins),
                hedges ? 100.0 * static_cast<double>(hedge_wins) /
                             static_cast<double>(hedges)
                       : 0.0);
    std::printf("  timeouts fired  %10llu\n",
                static_cast<unsigned long long>(timeouts));
    std::printf("  redirects       %10llu\n",
                static_cast<unsigned long long>(redirects));
  }

  if (!host_spans.empty() && top_n > 0) {
    std::partial_sort(host_spans.begin(),
                      host_spans.begin() +
                          static_cast<std::ptrdiff_t>(
                              std::min(top_n, host_spans.size())),
                      host_spans.end(),
                      [](const HostSpan& a, const HostSpan& b) {
                        return a.duration_ms() > b.duration_ms();
                      });
    std::printf("\ntop %zu slowest host requests:\n",
                std::min(top_n, host_spans.size()));
    std::printf("  %-12s %-6s %12s %12s %10s\n", "type", "array", "start ms",
                "end ms", "resp ms");
    for (std::size_t i = 0; i < std::min(top_n, host_spans.size()); ++i) {
      const HostSpan& h = host_spans[i];
      std::printf("  %-12s %-6d %12.3f %12.3f %10.3f\n", h.name.c_str(),
                  h.array, h.begin_us / 1e3, h.end_us / 1e3, h.duration_ms());
    }
  }
  return 0;
}
