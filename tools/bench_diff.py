#!/usr/bin/env python3
"""Per-section delta table between two BENCH_perf.json files.

Usage: bench_diff.py BASELINE.json CURRENT.json [--min-delta-pct=P]
       bench_diff.py --selftest

Flattens every numeric leaf of both files to a dot path
(kernel.events_per_sec, sharded.points[2].events_per_sec, ...), then
prints one table per top-level section with baseline, current, and the
relative delta. Keys present on only one side are reported as added or
removed rather than failing, so the tool keeps working across schema
bumps (e.g. the schema-5 `telemetry` and `service` sections appear as
"added" rows against a schema-4 baseline). Purely informational: always
exits 0 on a successful comparison (2 on unreadable input) -- the CI
regression *guard* lives in the workflow, this is the artifact humans
read when the guard trips.

--min-delta-pct hides rows whose |delta| is below the threshold
(default 0: show everything).

--selftest diffs two built-in fixtures spanning the schema 4 -> 5 bump
and checks the report renders deltas, added sections, removed keys, and
boolean leaves correctly. Exits 0 on pass, 1 on any failed check.
"""

import json
import sys


def flatten(value, prefix=""):
    """Yield (dot_path, leaf) for every numeric leaf under value."""
    if isinstance(value, bool):
        # bools are ints in Python; report them as 0/1 leaves so a
        # flipped `identical` flag shows up in the table.
        yield prefix, int(value)
    elif isinstance(value, (int, float)):
        yield prefix, value
    elif isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else key
            yield from flatten(child, path)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            yield from flatten(child, f"{prefix}[{i}]")
    # strings (mode, names) carry no perf signal: skipped


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def section_of(path):
    return path.split(".", 1)[0].split("[", 1)[0]


def fmt(value):
    if isinstance(value, int):
        return str(value)
    if abs(value) >= 1e6:
        return f"{value / 1e6:.2f}M"
    if abs(value) >= 1e3:
        return f"{value / 1e3:.2f}k"
    return f"{value:.3f}"


def report(base_doc, cur_doc, min_delta_pct=0.0):
    """Render the per-section delta table as a list of lines."""
    base = dict(flatten(base_doc))
    cur = dict(flatten(cur_doc))
    lines = []

    sections = []
    for path in list(base) + [p for p in cur if p not in base]:
        sec = section_of(path)
        if sec not in sections:
            sections.append(sec)

    width = max((len(p) for p in set(base) | set(cur)), default=20)
    for sec in sections:
        rows = []
        for path in [p for p in base if section_of(p) == sec] + \
                    [p for p in cur if section_of(p) == sec and
                     p not in base]:
            b, c = base.get(path), cur.get(path)
            if b is None:
                rows.append((path, "-", fmt(c), "added"))
            elif c is None:
                rows.append((path, fmt(b), "-", "removed"))
            else:
                if b == 0:
                    delta = "0.0%" if c == 0 else "inf"
                    pct = 0.0 if c == 0 else float("inf")
                else:
                    pct = (c - b) / abs(b) * 100.0
                    delta = f"{pct:+.1f}%"
                if abs(pct) < min_delta_pct:
                    continue
                rows.append((path, fmt(b), fmt(c), delta))
        if not rows:
            continue
        lines.append(f"\n== {sec} ==")
        for path, b, c, delta in rows:
            lines.append(f"  {path:<{width}}  {b:>12}  ->  {c:>12}  "
                         f"{delta:>8}")
    return lines


def selftest():
    """Diff two fixtures across the schema 4 -> 5 bump and check the
    rendering: plain deltas, whole added sections, removed keys, and
    boolean leaves."""
    base_doc = {
        "schema": 4,
        "mode": "full",
        "kernel": {"events_per_sec": 1_000_000.0},
        "tracing": {"events_per_sec_off": 500_000.0, "retired_key": 1.0},
    }
    cur_doc = {
        "schema": 5,
        "mode": "full",
        "kernel": {"events_per_sec": 1_200_000.0},
        "tracing": {"events_per_sec_off": 500_000.0},
        "telemetry": {"overhead_pct": 0.4, "identical": True},
        "service": {"offered_jobs": 48, "completed_ok": 10,
                    "goodput_jobs_per_sec": 260.0, "shed_pct": 79.2},
    }
    text = "\n".join(report(base_doc, cur_doc))

    checks = [
        ("schema bump renders as a delta", "schema" in text),
        ("kernel delta computed", "+20.0%" in text),
        ("service section header", "== service ==" in text),
        ("telemetry section header", "== telemetry ==" in text),
        ("added leaf flagged", "service.goodput_jobs_per_sec" in text
         and "added" in text),
        ("removed leaf flagged", "tracing.retired_key" in text
         and "removed" in text),
        ("bool leaf rendered as 0/1", "telemetry.identical" in text),
        ("unchanged leaf shows +0.0%", "+0.0%" in text),
    ]
    # --min-delta-pct must hide the unchanged row but keep added rows.
    filtered = "\n".join(report(base_doc, cur_doc, min_delta_pct=5.0))
    checks.append(("threshold hides unchanged rows",
                   "tracing.events_per_sec_off" not in filtered))
    checks.append(("threshold keeps added rows",
                   "service.goodput_jobs_per_sec" in filtered))

    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
    if failed:
        print(f"bench_diff selftest FAILED: {failed}", file=sys.stderr)
        return 1
    print(f"bench_diff selftest OK ({len(checks)} checks)")
    return 0


def main(argv):
    min_delta_pct = 0.0
    paths = []
    for arg in argv[1:]:
        if arg == "--selftest":
            return selftest()
        if arg.startswith("--min-delta-pct="):
            min_delta_pct = float(arg.split("=", 1)[1])
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            paths.append(arg)
    if len(paths) != 2:
        print("usage: bench_diff.py BASELINE.json CURRENT.json "
              "[--min-delta-pct=P] | bench_diff.py --selftest",
              file=sys.stderr)
        return 2

    print(f"baseline: {paths[0]}")
    print(f"current:  {paths[1]}")
    for line in report(load(paths[0]), load(paths[1]), min_delta_pct):
        print(line)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
