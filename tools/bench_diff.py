#!/usr/bin/env python3
"""Per-section delta table between two BENCH_perf.json files.

Usage: bench_diff.py BASELINE.json CURRENT.json [--min-delta-pct=P]

Flattens every numeric leaf of both files to a dot path
(kernel.events_per_sec, sharded.points[2].events_per_sec, ...), then
prints one table per top-level section with baseline, current, and the
relative delta. Keys present on only one side are reported as added or
removed rather than failing, so the tool keeps working across schema
bumps. Purely informational: always exits 0 on a successful comparison
(2 on unreadable input) -- the CI regression *guard* lives in the
workflow, this is the artifact humans read when the guard trips.

--min-delta-pct hides rows whose |delta| is below the threshold
(default 0: show everything).
"""

import json
import sys


def flatten(value, prefix=""):
    """Yield (dot_path, leaf) for every numeric leaf under value."""
    if isinstance(value, bool):
        # bools are ints in Python; report them as 0/1 leaves so a
        # flipped `identical` flag shows up in the table.
        yield prefix, int(value)
    elif isinstance(value, (int, float)):
        yield prefix, value
    elif isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else key
            yield from flatten(child, path)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            yield from flatten(child, f"{prefix}[{i}]")
    # strings (mode, names) carry no perf signal: skipped


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def section_of(path):
    return path.split(".", 1)[0].split("[", 1)[0]


def fmt(value):
    if isinstance(value, int):
        return str(value)
    if abs(value) >= 1e6:
        return f"{value / 1e6:.2f}M"
    if abs(value) >= 1e3:
        return f"{value / 1e3:.2f}k"
    return f"{value:.3f}"


def main(argv):
    min_delta_pct = 0.0
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--min-delta-pct="):
            min_delta_pct = float(arg.split("=", 1)[1])
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            paths.append(arg)
    if len(paths) != 2:
        print("usage: bench_diff.py BASELINE.json CURRENT.json "
              "[--min-delta-pct=P]", file=sys.stderr)
        return 2

    base = dict(flatten(load(paths[0])))
    cur = dict(flatten(load(paths[1])))

    print(f"baseline: {paths[0]}")
    print(f"current:  {paths[1]}")

    sections = []
    for path in list(base) + [p for p in cur if p not in base]:
        sec = section_of(path)
        if sec not in sections:
            sections.append(sec)

    width = max((len(p) for p in set(base) | set(cur)), default=20)
    for sec in sections:
        rows = []
        for path in [p for p in base if section_of(p) == sec] + \
                    [p for p in cur if section_of(p) == sec and
                     p not in base]:
            b, c = base.get(path), cur.get(path)
            if b is None:
                rows.append((path, "-", fmt(c), "added"))
            elif c is None:
                rows.append((path, fmt(b), "-", "removed"))
            else:
                if b == 0:
                    delta = "0.0%" if c == 0 else "inf"
                    pct = 0.0 if c == 0 else float("inf")
                else:
                    pct = (c - b) / abs(b) * 100.0
                    delta = f"{pct:+.1f}%"
                if abs(pct) < min_delta_pct:
                    continue
                rows.append((path, fmt(b), fmt(c), delta))
        if not rows:
            continue
        print(f"\n== {sec} ==")
        for path, b, c, delta in rows:
            print(f"  {path:<{width}}  {b:>12}  ->  {c:>12}  {delta:>8}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
