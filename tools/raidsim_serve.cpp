// raidsim_serve: the what-if simulation daemon.
//
// Accepts newline-delimited JSON jobs over a local AF_UNIX socket and
// runs them on a bounded worker pool with admission control, per-job
// deadlines, transient-failure retries, a result cache, a stuck-job
// watchdog, and graceful drain on SIGTERM/SIGINT (stop admitting,
// finish or cancel in-flight work inside the drain budget, flush final
// stats). See docs/service.md for the protocol.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/export.hpp"
#include "svc/server.hpp"

namespace {

raidsim::svc::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();  // async-signal-safe
}

void usage() {
  std::fprintf(stderr,
               "usage: raidsim_serve --socket PATH [options]\n"
               "  --socket PATH      AF_UNIX socket path (required)\n"
               "  --workers N        worker threads (default 2)\n"
               "  --queue N          admission queue capacity (default 8)\n"
               "  --cache N          result-cache entries (default 128)\n"
               "  --retry-cap N      max transient retries per job (default 5)\n"
               "  --backoff-ms X     retry backoff base (default 5)\n"
               "  --watchdog-ms X    watchdog scan period (default 20)\n"
               "  --stuck-ms X       cancel jobs running longer than X (default off)\n"
               "  --drain-ms X       drain budget on shutdown (default 5000)\n"
               "  --trace-out PREFIX service-level Chrome trace on shutdown\n"
               "  --flight-dir DIR   flight recorder: dump a Chrome trace of\n"
               "                     the last spans when a job dies abnormally\n"
               "  --flight-events N  flight-recorder ring capacity (default 4096)\n"
               "  --progress-ms X    min spacing of streamed progress frames\n"
               "                     (default 50)\n");
}

}  // namespace

int main(int argc, char** argv) {
  raidsim::svc::Server::Options opts;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "raidsim_serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") opts.socket_path = value();
    else if (arg == "--workers") opts.supervisor.workers = std::atoi(value());
    else if (arg == "--queue")
      opts.supervisor.queue_capacity =
          static_cast<std::size_t>(std::atoll(value()));
    else if (arg == "--cache")
      opts.supervisor.cache_capacity =
          static_cast<std::size_t>(std::atoll(value()));
    else if (arg == "--retry-cap") opts.supervisor.retry_cap = std::atoi(value());
    else if (arg == "--backoff-ms")
      opts.supervisor.backoff_base_ms = std::atof(value());
    else if (arg == "--watchdog-ms")
      opts.supervisor.watchdog_period_ms = std::atof(value());
    else if (arg == "--stuck-ms") opts.supervisor.stuck_job_ms = std::atof(value());
    else if (arg == "--drain-ms")
      opts.supervisor.drain_budget_ms = std::atof(value());
    else if (arg == "--trace-out") {
      trace_out = value();
      opts.supervisor.tracing = true;
    } else if (arg == "--flight-dir") {
      opts.supervisor.flight_dir = value();
    } else if (arg == "--flight-events") {
      opts.supervisor.flight_events =
          static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--progress-ms") {
      opts.supervisor.progress_interval_ms = std::atof(value());
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "raidsim_serve: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (opts.socket_path.empty()) {
    usage();
    return 2;
  }

  try {
    raidsim::svc::Server server(opts);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    std::fprintf(stderr, "raidsim_serve: listening on %s\n",
                 opts.socket_path.c_str());
    server.run();
    if (!trace_out.empty() && server.supervisor().tracer() != nullptr) {
      std::ofstream out(trace_out + ".trace.json");
      raidsim::write_chrome_trace(out, *server.supervisor().tracer());
      std::fprintf(stderr, "raidsim_serve: wrote %s.trace.json\n",
                   trace_out.c_str());
    }
    g_server = nullptr;
    std::fprintf(stderr, "raidsim_serve: drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "raidsim_serve: fatal: %s\n", e.what());
    return 1;
  }
}
