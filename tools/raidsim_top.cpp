// raidsim_top: live terminal view of a running raidsim_serve daemon.
//
// Two connections drive the display: a polling connection issues
// `metrics` scrapes (Prometheus text) on each refresh, and a subscribed
// connection receives the progress-frame firehose ({"type":"progress"}
// lines) that every running job streams from its engine's event-batch
// boundaries. The screen shows queue depth, in-flight count, goodput /
// shed / retry rates (derived from scrape deltas), and one progress bar
// per active job.
//
// Usage: raidsim_top --socket PATH [--interval-ms N] [--once]
//   --once prints a single plain-text snapshot (no ANSI) and exits --
//   the mode CI uses to smoke the whole metrics+subscribe path.

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/json.hpp"

namespace {

using raidsim::svc::JsonValue;

struct JobRow {
  std::string id;
  int attempt = 1;
  double percent = -1.0;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  std::uint64_t events = 0;
  double sim_ms = 0.0;
  double eta_ms = -1.0;
  bool final_frame = false;
  std::chrono::steady_clock::time_point updated;
};

/// Subscriber connection: its own fd so progress frames never interleave
/// with the poller's request/response pairs.
class Firehose {
 public:
  explicit Firehose(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("raidsim_top: socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      throw std::runtime_error("raidsim_top: connect(" + socket_path +
                               ") failed: " + std::strerror(errno));
    static const char kSubscribe[] = "{\"op\":\"subscribe\"}\n";
    if (::send(fd_, kSubscribe, sizeof(kSubscribe) - 1, MSG_NOSIGNAL) < 0)
      throw std::runtime_error("raidsim_top: subscribe failed");
    reader_ = std::thread([this] { read_loop(); });
  }

  ~Firehose() {
    stop_.store(true, std::memory_order_release);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    if (reader_.joinable()) reader_.join();
    if (fd_ >= 0) ::close(fd_);
  }

  /// Snapshot of the live job table; finished/stale rows pruned.
  std::vector<JobRow> jobs() {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<JobRow> out;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      const auto age = now - it->second.updated;
      const bool drop = it->second.final_frame
                            ? age > std::chrono::seconds(2)
                            : age > std::chrono::seconds(15);
      if (drop) {
        it = jobs_.erase(it);
      } else {
        out.push_back(it->second);
        ++it;
      }
    }
    return out;
  }

  std::uint64_t frames_seen() const {
    return frames_.load(std::memory_order_relaxed);
  }
  bool alive() const { return !dead_.load(std::memory_order_acquire); }

 private:
  void read_loop() {
    std::string buffer;
    char chunk[4096];
    while (!stop_.load(std::memory_order_acquire)) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = buffer.find('\n', start);
        if (nl == std::string::npos) break;
        handle_line(buffer.substr(start, nl - start));
        start = nl + 1;
      }
      buffer.erase(0, start);
    }
    dead_.store(true, std::memory_order_release);
  }

  void handle_line(const std::string& line) {
    JsonValue frame;
    try {
      frame = raidsim::svc::json_parse(line);
    } catch (...) {
      return;  // not ours to crash on
    }
    const JsonValue* type = frame.find("type");
    if (type == nullptr || !type->is_string() ||
        type->as_string() != "progress")
      return;  // subscribe ack or an unrelated response
    frames_.fetch_add(1, std::memory_order_relaxed);

    JobRow row;
    if (const JsonValue* v = frame.find("id"); v && v->is_string())
      row.id = v->as_string();
    std::string key = row.id;
    if (const JsonValue* v = frame.find("key"); v && v->is_string()) {
      if (key.empty()) key = v->as_string();
      if (row.id.empty()) row.id = v->as_string().substr(0, 8);
    }
    if (const JsonValue* v = frame.find("attempt"); v && v->is_number())
      row.attempt = static_cast<int>(v->as_number());
    if (const JsonValue* v = frame.find("percent"); v && v->is_number())
      row.percent = v->as_number();
    if (const JsonValue* v = frame.find("done"); v && v->is_number())
      row.done = static_cast<std::uint64_t>(v->as_number());
    if (const JsonValue* v = frame.find("total"); v && v->is_number())
      row.total = static_cast<std::uint64_t>(v->as_number());
    if (const JsonValue* v = frame.find("events"); v && v->is_number())
      row.events = static_cast<std::uint64_t>(v->as_number());
    if (const JsonValue* v = frame.find("sim_ms"); v && v->is_number())
      row.sim_ms = v->as_number();
    if (const JsonValue* v = frame.find("eta_ms"); v && v->is_number())
      row.eta_ms = v->as_number();
    if (const JsonValue* v = frame.find("final"); v && v->is_bool())
      row.final_frame = v->as_bool();
    row.updated = std::chrono::steady_clock::now();

    std::lock_guard<std::mutex> lock(mu_);
    jobs_[key] = std::move(row);
  }

  int fd_ = -1;
  std::thread reader_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> dead_{false};
  std::atomic<std::uint64_t> frames_{0};
  std::mutex mu_;
  std::map<std::string, JobRow> jobs_;
};

/// Prometheus text -> {name: value}. Histogram series keep their
/// suffixed names (_sum/_count/_bucket lines are skipped unless exact).
std::map<std::string, double> parse_scrape(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    std::string name = line.substr(0, sp);
    if (name.find('{') != std::string::npos) continue;  // bucket series
    out[name] = std::atof(line.c_str() + sp + 1);
  }
  return out;
}

double get(const std::map<std::string, double>& m, const char* key) {
  const auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}

std::string bar(double percent, int width) {
  if (percent < 0.0) return std::string(static_cast<std::size_t>(width), '.');
  const int filled = static_cast<int>(percent / 100.0 * width + 0.5);
  std::string out;
  for (int i = 0; i < width; ++i) out += i < filled ? '#' : '-';
  return out;
}

void render(const std::map<std::string, double>& now,
            const std::map<std::string, double>& prev, double dt_s,
            const std::vector<JobRow>& jobs, std::uint64_t frames,
            bool ansi) {
  auto rate = [&](const char* key) {
    return dt_s > 0.0 ? (get(now, key) - get(prev, key)) / dt_s : 0.0;
  };
  if (ansi) std::fputs("\x1b[H\x1b[2J", stdout);
  std::printf("raidsim_top -- what-if service\n");
  std::printf(
      "queue %3.0f  inflight %3.0f  | goodput %6.1f/s  shed %5.1f/s  "
      "retry %5.1f/s  deadline %5.1f/s\n",
      get(now, "raidsim_svc_queue_depth"), get(now, "raidsim_svc_inflight"),
      rate("raidsim_svc_jobs_ok_total"),
      rate("raidsim_svc_jobs_overloaded_total"),
      rate("raidsim_svc_retries_total"),
      rate("raidsim_svc_jobs_deadline_total"));
  std::printf(
      "totals: ok %.0f (cached %.0f)  shed %.0f  failed %.0f  "
      "cancelled %.0f  deadline %.0f  flights %.0f\n",
      get(now, "raidsim_svc_jobs_ok_total"),
      get(now, "raidsim_svc_jobs_cached_total"),
      get(now, "raidsim_svc_jobs_overloaded_total"),
      get(now, "raidsim_svc_jobs_failed_total"),
      get(now, "raidsim_svc_jobs_cancelled_total"),
      get(now, "raidsim_svc_jobs_deadline_total"),
      get(now, "raidsim_svc_flight_dumps_total"));
  std::printf(
      "engines: classic %.0f runs / %.0f events   sharded %.0f runs / "
      "%.0f events   frames %llu\n\n",
      get(now, "raidsim_engine_classic_runs_total"),
      get(now, "raidsim_engine_classic_events_total"),
      get(now, "raidsim_engine_sharded_runs_total"),
      get(now, "raidsim_engine_sharded_events_total"),
      static_cast<unsigned long long>(frames));

  if (jobs.empty()) {
    std::printf("(no running jobs)\n");
  } else {
    for (const JobRow& job : jobs) {
      std::string label = job.id.empty() ? "(anon)" : job.id;
      if (label.size() > 16) label = label.substr(0, 16);
      std::printf("%-16s a%-2d [%s]", label.c_str(), job.attempt,
                  bar(job.percent, 30).c_str());
      if (job.percent >= 0.0)
        std::printf(" %5.1f%%", job.percent);
      else
        std::printf("   ?  ");
      std::printf("  %10llu ev  sim %8.0f ms",
                  static_cast<unsigned long long>(job.events), job.sim_ms);
      if (job.final_frame)
        std::printf("  done");
      else if (job.eta_ms >= 0.0)
        std::printf("  eta %5.1f s", job.eta_ms / 1000.0);
      std::printf("\n");
    }
  }
  std::fflush(stdout);
}

void usage() {
  std::fprintf(stderr,
               "usage: raidsim_top --socket PATH [--interval-ms N] [--once]\n"
               "  --socket PATH    raidsim_serve AF_UNIX socket (required)\n"
               "  --interval-ms N  refresh period (default 500)\n"
               "  --once           one plain snapshot, then exit (for CI)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  double interval_ms = 500.0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "raidsim_top: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") socket_path = value();
    else if (arg == "--interval-ms") interval_ms = std::atof(value());
    else if (arg == "--once") once = true;
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "raidsim_top: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (socket_path.empty()) {
    usage();
    return 2;
  }
  interval_ms = std::max(50.0, interval_ms);

  try {
    raidsim::svc::Client poller(socket_path);
    Firehose firehose(socket_path);

    auto scrape = [&poller]() {
      const JsonValue response =
          poller.request("{\"op\":\"metrics\",\"id\":\"top\"}");
      const JsonValue* text = response.find("metrics_text");
      if (text == nullptr || !text->is_string())
        throw std::runtime_error("raidsim_top: malformed metrics response");
      return parse_scrape(text->as_string());
    };

    std::map<std::string, double> prev = scrape();
    auto prev_at = std::chrono::steady_clock::now();
    for (;;) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          once ? std::min(interval_ms, 200.0) : interval_ms));
      const auto at = std::chrono::steady_clock::now();
      const std::map<std::string, double> now = scrape();
      const double dt_s =
          std::chrono::duration<double>(at - prev_at).count();
      render(now, prev, dt_s, firehose.jobs(), firehose.frames_seen(), !once);
      prev = now;
      prev_at = at;
      if (once) return 0;
      if (!firehose.alive()) {
        std::fprintf(stderr, "raidsim_top: server closed the firehose\n");
        return 0;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "raidsim_top: %s\n", e.what());
    return 1;
  }
}
