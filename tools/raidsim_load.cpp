// raidsim_load: closed-loop load client for the what-if daemon.
//
// Opens N concurrent connections; each one sends `run` jobs back to
// back (a new request the moment the previous response lands) until its
// request budget is spent. Every response is tallied by typed status,
// and the combined tally is printed as one JSON line on stdout.
//
// Exit status: 0 when every request got a well-formed typed response
// (rejections included -- overload shedding is correct behavior under
// saturation); 1 on any transport error, malformed response, or hang.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/job_codec.hpp"

namespace {

struct Tally {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> cached{0};
  std::atomic<std::uint64_t> invalid{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> draining{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> deadline{0};
  std::atomic<std::uint64_t> transport_errors{0};
};

void usage() {
  std::fprintf(stderr,
               "usage: raidsim_load --socket PATH [options]\n"
               "  --clients N       concurrent connections (default 4)\n"
               "  --requests N      requests per client (default 8)\n"
               "  --scale X         workload scale in (0,1] (default 0.02)\n"
               "  --trace NAME      trace1|trace2 (default trace2)\n"
               "  --deadline-ms X   per-job deadline (default none)\n"
               "  --seed-base N     seed for client c, request r = base+c*1000+r\n"
               "  --same-seed       every request uses seed-base (cache hits)\n"
               "  --no-cache        bypass the server result cache lookup\n"
               "  --timeout-ms X    client receive timeout (default 120000)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int clients = 4;
  int requests = 8;
  double scale = 0.02;
  std::string trace = "trace2";
  double deadline_ms = 0.0;
  std::uint64_t seed_base = 1;
  bool same_seed = false;
  bool no_cache = false;
  double timeout_ms = 120000.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "raidsim_load: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") socket_path = value();
    else if (arg == "--clients") clients = std::atoi(value());
    else if (arg == "--requests") requests = std::atoi(value());
    else if (arg == "--scale") scale = std::atof(value());
    else if (arg == "--trace") trace = value();
    else if (arg == "--deadline-ms") deadline_ms = std::atof(value());
    else if (arg == "--seed-base")
      seed_base = static_cast<std::uint64_t>(std::atoll(value()));
    else if (arg == "--same-seed") same_seed = true;
    else if (arg == "--no-cache") no_cache = true;
    else if (arg == "--timeout-ms") timeout_ms = std::atof(value());
    else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "raidsim_load: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (socket_path.empty() || clients < 1 || requests < 1) {
    usage();
    return 2;
  }

  Tally tally;
  auto client_loop = [&](int index) {
    try {
      raidsim::svc::Client client(socket_path, timeout_ms);
      for (int r = 0; r < requests; ++r) {
        raidsim::svc::JobRequest job;
        job.trace = trace;
        job.workload.scale = scale;
        job.workload.seed =
            same_seed ? seed_base
                      : seed_base + static_cast<std::uint64_t>(index) * 1000 +
                            static_cast<std::uint64_t>(r);
        job.deadline_ms = deadline_ms;
        job.no_cache = no_cache;
        char id[48];
        std::snprintf(id, sizeof(id), "c%d-r%d", index, r);
        job.id = id;
        tally.sent.fetch_add(1);
        const raidsim::svc::JsonValue response =
            client.request(raidsim::svc::encode_job_request(job));
        const std::string status = response.find("status") != nullptr
                                       ? response.find("status")->as_string()
                                       : "?";
        if (status == "ok") {
          tally.ok.fetch_add(1);
          const raidsim::svc::JsonValue* cached = response.find("cached");
          if (cached != nullptr && cached->is_bool() && cached->as_bool())
            tally.cached.fetch_add(1);
        } else if (status == "invalid") tally.invalid.fetch_add(1);
        else if (status == "overloaded") tally.overloaded.fetch_add(1);
        else if (status == "draining") tally.draining.fetch_add(1);
        else if (status == "failed") tally.failed.fetch_add(1);
        else if (status == "cancelled") tally.cancelled.fetch_add(1);
        else if (status == "deadline") tally.deadline.fetch_add(1);
        else tally.transport_errors.fetch_add(1);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "raidsim_load: client %d: %s\n", index, e.what());
      tally.transport_errors.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) threads.emplace_back(client_loop, c);
  for (auto& t : threads) t.join();

  std::printf(
      "{\"sent\":%llu,\"ok\":%llu,\"cached\":%llu,\"invalid\":%llu,"
      "\"overloaded\":%llu,\"draining\":%llu,\"failed\":%llu,"
      "\"cancelled\":%llu,\"deadline\":%llu,\"transport_errors\":%llu}\n",
      static_cast<unsigned long long>(tally.sent.load()),
      static_cast<unsigned long long>(tally.ok.load()),
      static_cast<unsigned long long>(tally.cached.load()),
      static_cast<unsigned long long>(tally.invalid.load()),
      static_cast<unsigned long long>(tally.overloaded.load()),
      static_cast<unsigned long long>(tally.draining.load()),
      static_cast<unsigned long long>(tally.failed.load()),
      static_cast<unsigned long long>(tally.cancelled.load()),
      static_cast<unsigned long long>(tally.deadline.load()),
      static_cast<unsigned long long>(tally.transport_errors.load()));
  return tally.transport_errors.load() == 0 ? 0 : 1;
}
